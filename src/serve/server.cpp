#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "frontend/esl_format.h"
#include "netlist/patterns.h"
#include "serve/protocol.h"

namespace esl::serve {

namespace {

std::string requiredString(const json::Value& head, const std::string& key) {
  const json::Value* v = head.find(key);
  ESL_CHECK(v != nullptr && v->isString(), "request needs a string '" + key + "'");
  return v->asString();
}

std::uint64_t requiredU64(const json::Value& head, const std::string& key) {
  const json::Value* v = head.find(key);
  ESL_CHECK(v != nullptr, "request needs a number '" + key + "'");
  return v->asU64();
}

SimSession::Options sessionOptions(const json::Value& head) {
  SimSession::Options opts;
  if (const json::Value* v = head.find("backend")) {
    const std::string& b = v->asString();
    if (b == "compiled")
      opts.backend = SimContext::Backend::kCompiled;
    else
      ESL_CHECK(b == "interpreted", "unknown backend '" + b + "'");
  }
  if (const json::Value* v = head.find("shards"))
    opts.shards = static_cast<unsigned>(v->asU64());
  if (const json::Value* v = head.find("seed")) opts.seed = v->asU64();
  if (const json::Value* v = head.find("check")) opts.checkProtocol = v->asBool();
  if (const json::Value* v = head.find("cross-check"))
    opts.crossCheck = v->asBool();
  return opts;
}

json::Value okHead(std::uint64_t id) {
  json::Value head = json::Value::object();
  head.set("id", json::Value::number(id));
  head.set("ok", json::Value::boolean(true));
  return head;
}

}  // namespace

Server::Server(Config config)
    : config_(std::move(config)), service_(config_.service) {
  ESL_CHECK(!config_.socketPath.empty(), "serve needs a socket path");
  ESL_CHECK(config_.socketPath.size() < sizeof(sockaddr_un{}.sun_path),
            "socket path too long: '" + config_.socketPath + "'");
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ESL_CHECK(listenFd_ >= 0,
            std::string("cannot create socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socketPath.c_str(),
               sizeof(addr.sun_path) - 1);
  std::remove(config_.socketPath.c_str());  // stale socket from a dead daemon
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listenFd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw EslError("cannot listen on '" + config_.socketPath + "': " + why);
  }
}

Server::~Server() {
  requestStop();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  if (listenFd_ >= 0) ::close(listenFd_);
  std::remove(config_.socketPath.c_str());
}

void Server::requestStop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Unblock the accept loop; run() does the session/connection teardown.
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
}

void Server::requestDrainStop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    drainOnStop_ = true;
  }
  requestStop();
}

void Server::run() {
  while (true) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (requestStop) or failed
    }
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  bool drain = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    drain = drainOnStop_;
  }
  if (drain) {
    // SIGTERM path: abort in-flight steps at quantum boundaries (handlers
    // get structured "draining" errors) and spool every resident session so
    // a restart on the same spool directory re-attaches them all.
    try {
      const std::size_t n = service_.drainAndSpool();
      std::fprintf(stderr, "esl serve: drained %zu session(s) to spool\n", n);
      std::fflush(stderr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esl serve: drain failed: %s\n", e.what());
      std::fflush(stderr);
    }
  } else {
    // Closing every session aborts in-flight steps at quantum boundaries and
    // fails queued ops, so no handler thread stays blocked inside the service.
    for (const std::string& sid : service_.sessionIds()) {
      try {
        service_.close(sid);
      } catch (const NotFoundError&) {
        // a client closed it concurrently
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    for (const int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

Frame Server::dispatch(const Frame& request, bool& helloDone,
                       bool& wantShutdown) {
  const json::Value* idField = request.head.find("id");
  const bool hasId = idField != nullptr;
  const std::uint64_t id = hasId ? idField->asU64() : 0;
  try {
    const std::string op = requiredString(request.head, "op");
    ESL_CHECK(hasId, "request needs an 'id'");
    if (!helloDone && op != "hello")
      throw ProtocolError("first request must be 'hello' (protocol version " +
                          std::to_string(kProtocolVersion) + ")");
    Frame reply;
    reply.head = okHead(id);

    if (op == "hello") {
      const std::uint64_t proto = requiredU64(request.head, "proto");
      if (proto != kProtocolVersion)
        throw ProtocolError("protocol version mismatch: client speaks " +
                            std::to_string(proto) + ", server speaks " +
                            std::to_string(kProtocolVersion));
      helloDone = true;
      reply.head.set("proto", json::Value::number(kProtocolVersion));
      return reply;
    }
    if (op == "stats") {
      const Service::Stats s = service_.stats();
      reply.head.set("sessions", json::Value::number(s.sessions));
      reply.head.set("resident", json::Value::number(s.resident));
      reply.head.set("peak-resident", json::Value::number(s.peakResident));
      reply.head.set("opened", json::Value::number(s.opened));
      reply.head.set("evictions", json::Value::number(s.evictions));
      reply.head.set("restores", json::Value::number(s.restores));
      reply.head.set("denied", json::Value::number(s.denied));
      reply.head.set("ops", json::Value::number(s.ops));
      reply.head.set("recovered", json::Value::number(s.recovered));
      reply.head.set("quarantined", json::Value::number(s.quarantined));
      return reply;
    }
    if (op == "shutdown") {
      wantShutdown = true;
      return reply;
    }

    const std::string sid = requiredString(request.head, "session");
    if (op == "open") {
      NetlistSpec spec;
      std::string origin;
      if (request.head.find("bytes") != nullptr) {
        // Inline `.esl` body in the payload block.
        origin = "<" + sid + ">";
        if (const json::Value* o = request.head.find("origin"))
          origin = o->asString();
        spec = frontend::parseEsl(request.payload, origin);
      } else {
        origin = requiredString(request.head, "design");
        spec = patterns::designSpec(origin);
      }
      reply.head.set("text", json::Value::str(service_.open(
                                 sid, std::move(spec), origin,
                                 sessionOptions(request.head))));
      return reply;
    }
    if (op == "cmd") {
      const std::string line = requiredString(request.head, "line");
      reply.head.set("text", json::Value::str(service_.command(sid, line)));
      return reply;
    }
    if (op == "step") {
      const std::uint64_t cycles = requiredU64(request.head, "cycles");
      reply.head.set("text", json::Value::str(service_.step(sid, cycles)));
      reply.head.set("cycle", json::Value::number(service_.cycle(sid)));
      return reply;
    }
    if (op == "query") {
      const std::string what = requiredString(request.head, "what");
      if (what == "sinks") {
        reply.head.set("text", json::Value::str(service_.sinks(sid)));
      } else if (what == "tput") {
        reply.head.set(
            "text", json::Value::str(service_.tput(
                        sid, requiredString(request.head, "channel"))));
      } else if (what == "cycle") {
        reply.head.set("cycle", json::Value::number(service_.cycle(sid)));
      } else {
        throw EslError("unknown query '" + what + "' (sinks|tput|cycle)");
      }
      return reply;
    }
    if (op == "snapshot") {
      const std::vector<std::uint8_t> bytes = service_.snapshot(sid);
      reply.head.set("cycle", json::Value::number(service_.cycle(sid)));
      reply.payload.assign(bytes.begin(), bytes.end());
      return reply;
    }
    if (op == "restore") {
      ESL_CHECK(request.head.find("bytes") != nullptr,
                "restore needs a snapshot payload");
      service_.restore(sid, std::vector<std::uint8_t>(request.payload.begin(),
                                                      request.payload.end()));
      reply.head.set("cycle", json::Value::number(service_.cycle(sid)));
      return reply;
    }
    if (op == "watch") {
      std::vector<std::string> channels;
      if (const json::Value* chs = request.head.find("channels"))
        for (const json::Value& ch : chs->items())
          channels.push_back(ch.asString());
      service_.watch(sid, std::move(channels));
      return reply;
    }
    if (op == "drain") {
      std::uint64_t maxBytes = 1 << 20;
      if (const json::Value* m = request.head.find("max")) maxBytes = m->asU64();
      bool more = false;
      reply.payload =
          service_.drain(sid, static_cast<std::size_t>(maxBytes), &more);
      reply.head.set("more", json::Value::boolean(more));
      return reply;
    }
    if (op == "close") {
      service_.close(sid);
      return reply;
    }
    throw EslError("unknown op '" + op + "'");
  } catch (const std::exception& e) {
    Frame reply;
    reply.head = errorHead(hasId, id, errorKind(e), e.what());
    return reply;
  }
}

void Server::handleConnection(int fd) {
  try {
    writeFrame(fd, greetingHead());
    FrameReader reader(fd, config_.maxPayloadBytes);
    Frame request;
    bool helloDone = false;
    bool wantShutdown = false;
    while (reader.read(request)) {
      const Frame reply = dispatch(request, helloDone, wantShutdown);
      writeFrame(fd, reply.head, reply.payload);
      if (!helloDone) break;  // failed handshake: answer, then hang up
      if (wantShutdown) {
        requestStop();
        break;
      }
    }
  } catch (const std::exception& e) {
    // Framing/IO damage: best-effort error frame, then drop the connection.
    try {
      writeFrame(fd, errorHead(false, 0, errorKind(e), e.what()));
    } catch (...) {
    }
  }
  ::close(fd);
}

}  // namespace esl::serve
