// Minimal JSON value for the serve wire protocol (src/serve/protocol.h).
//
// The daemon speaks newline-delimited JSON; this is the self-contained
// parser/printer behind it — strict RFC-8259 subset, objects kept as ordered
// key/value vectors so printed requests and responses are deterministic
// byte-for-byte (the serve determinism gate diffs whole transcripts).
// Numbers are IEEE doubles; the protocol keeps every integer field (ids,
// cycle counts, payload sizes) below 2^53 so the round-trip is exact.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace esl::serve::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value boolean(bool b);
  static Value number(double n);
  static Value number(std::uint64_t n);
  static Value str(std::string s);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isBool() const { return kind_ == Kind::kBool; }
  bool isNumber() const { return kind_ == Kind::kNumber; }
  bool isString() const { return kind_ == Kind::kString; }
  bool isArray() const { return kind_ == Kind::kArray; }
  bool isObject() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw EslError on kind mismatch.
  bool asBool() const;
  double asNumber() const;
  /// Non-negative integer below 2^53 (protocol counters); throws otherwise.
  std::uint64_t asU64() const;
  const std::string& asString() const;
  const std::vector<Value>& items() const;
  std::vector<Value>& items();
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object helpers. find returns nullptr when absent (or not an object);
  /// set appends or replaces in place, preserving insertion order.
  const Value* find(const std::string& key) const;
  void set(const std::string& key, Value v);
  void push(Value v);  ///< array append

  /// Compact single-line text (no spaces — one request/response per line).
  std::string dump() const;
  /// Strict parse of exactly one JSON document (trailing junk rejected);
  /// throws ParseError with `origin` in the message.
  static Value parse(const std::string& text,
                     const std::string& origin = "<json>");

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace esl::serve::json
