// SpoolDir: the serve daemon's durable session store.
//
// One directory holds one checksummed record file per spooled session
// (`<sid>.spool`, the state_file container around SimSession::spoolSave
// bytes) plus an append-only NDJSON journal (`spool.journal`) mapping
// session ids to their records: {"event":"spool","sid":...} when a session
// first gains a record, {"event":"close","sid":...} when it is removed.
//
// Crash-safety discipline: the journal line is appended and fsynced BEFORE
// the record's atomic temp-fsync-rename, so no crash window can leave a
// journaled-live session whose durable record a recovery scan would treat
// as an orphan and delete. The worst a crash leaves is a live journal entry
// with no record yet (reported and dropped) or a doomed `.tmp` (removed).
//
// recover() replays the journal, validates every live record's container
// (magic, declared length, CRC), quarantines damaged records by renaming
// them to `<file>.corrupt` with a structured warning — never aborting —
// compacts orphans (un-journaled records, stale temps) and rewrites the
// journal to one line per surviving session.
//
// Ephemeral mode (the service's private temp dir): same record format, no
// journal, no recovery — the directory dies with the process.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace esl::serve {

class SpoolDir {
 public:
  struct Recovered {
    std::string sid;
    std::string path;
  };

  SpoolDir() = default;

  /// Binds to `dir` (created if missing). Persistent mode maintains the
  /// journal and supports recover(); ephemeral mode is record files only.
  void open(const std::string& dir, bool persistent);

  const std::string& dir() const { return dir_; }
  bool persistent() const { return persistent_; }

  std::string recordPath(const std::string& sid) const {
    return dir_ + "/" + sid + ".spool";
  }

  /// Writes the session's record atomically (checksummed container, fault
  /// point "spool-write"), journaling the sid first if it has no record yet.
  /// Throws EslError when the journal or record cannot be written.
  void writeRecord(const std::string& sid,
                   const std::vector<std::uint8_t>& payload);

  /// Reads and verifies a record; throws EslError on damage.
  std::vector<std::uint8_t> readRecord(const std::string& sid) const;

  /// Removes the record (if any) and journals the close in persistent mode.
  void removeRecord(const std::string& sid);

  /// Startup recovery scan (persistent mode): returns the sessions whose
  /// records verified clean. Damaged records are renamed `.corrupt` and
  /// reported through `warnings`; orphans and temps are deleted; the journal
  /// is compacted. `quarantined` (optional) counts renamed records.
  std::vector<Recovered> recover(std::vector<std::string>& warnings,
                                 std::uint64_t* quarantined = nullptr);

 private:
  std::string journalPath() const { return dir_ + "/spool.journal"; }
  /// Appends one fsynced journal line; compacts when the journal has grown
  /// well past the live-session count.
  void journalAppend(const std::string& event, const std::string& sid);
  /// Rewrites the journal as one "spool" line per live sid (atomic).
  void journalCompactLocked();

  std::string dir_;
  bool persistent_ = false;

  mutable std::mutex m_;
  std::set<std::string> journaled_;  ///< sids with a live journal entry
  std::uint64_t journalLines_ = 0;   ///< appended since the last compaction
};

}  // namespace esl::serve
