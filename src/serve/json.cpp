#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/error.h"

namespace esl::serve::json {

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = n;
  return v;
}

Value Value::number(std::uint64_t n) {
  ESL_CHECK(n < (std::uint64_t{1} << 53),
            "json: integer " + std::to_string(n) + " exceeds the exact range");
  return number(static_cast<double>(n));
}

Value Value::str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Value::asBool() const {
  ESL_CHECK(isBool(), "json: expected bool");
  return bool_;
}

double Value::asNumber() const {
  ESL_CHECK(isNumber(), "json: expected number");
  return num_;
}

std::uint64_t Value::asU64() const {
  ESL_CHECK(isNumber(), "json: expected number");
  ESL_CHECK(num_ >= 0 && num_ < 9007199254740992.0 && num_ == std::floor(num_),
            "json: expected a non-negative integer");
  return static_cast<std::uint64_t>(num_);
}

const std::string& Value::asString() const {
  ESL_CHECK(isString(), "json: expected string");
  return str_;
}

const std::vector<Value>& Value::items() const {
  ESL_CHECK(isArray(), "json: expected array");
  return items_;
}

std::vector<Value>& Value::items() {
  ESL_CHECK(isArray(), "json: expected array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  ESL_CHECK(isObject(), "json: expected object");
  return members_;
}

const Value* Value::find(const std::string& key) const {
  if (!isObject()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Value::set(const std::string& key, Value v) {
  ESL_CHECK(isObject(), "json: set on a non-object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

void Value::push(Value v) {
  ESL_CHECK(isArray(), "json: push on a non-array");
  items_.push_back(std::move(v));
}

namespace {

void dumpString(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dumpValue(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.asBool() ? "true" : "false";
      break;
    case Value::Kind::kNumber: {
      const double n = v.asNumber();
      ESL_CHECK(std::isfinite(n), "json: non-finite number");
      char buf[32];
      if (n == std::floor(n) && std::fabs(n) < 9007199254740992.0) {
        std::snprintf(buf, sizeof buf, "%.0f", n);
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", n);
      }
      out += buf;
      break;
    }
    case Value::Kind::kString:
      dumpString(v.asString(), out);
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : v.items()) {
        if (!first) out += ',';
        first = false;
        dumpValue(item, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, item] : v.members()) {
        if (!first) out += ',';
        first = false;
        dumpString(k, out);
        out += ':';
        dumpValue(item, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(origin_ + ": " + msg + " at offset " +
                     std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeWord(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (text_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return Value::str(parseString());
    if (c == 't') {
      if (!consumeWord("true")) fail("bad literal");
      return Value::boolean(true);
    }
    if (c == 'f') {
      if (!consumeWord("false")) fail("bad literal");
      return Value::boolean(false);
    }
    if (c == 'n') {
      if (!consumeWord("null")) fail("bad literal");
      return Value();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
    fail("unexpected character");
  }

  Value parseObject() {
    expect('{');
    Value obj = Value::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      // Duplicate keys are a protocol error, not last-wins: silently folding
      // them would let a request smuggle two different payload sizes.
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      obj.set(key, parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Value parseArray() {
    expect('[');
    Value arr = Value::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return v;
  }

  void appendUtf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          appendUtf8(cp, out);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || !std::isfinite(v)) fail("bad number");
    return Value::number(v);
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dumpValue(*this, out);
  return out;
}

Value Value::parse(const std::string& text, const std::string& origin) {
  return Parser(text, origin).parseDocument();
}

}  // namespace esl::serve::json
