// Service: the serve daemon's session manager and scheduler.
//
// Owns every SimSession, keyed by client-chosen id, and farms their work onto
// the work-stealing Executor via submit(): each session is a strict FIFO of
// pending operations, and at most one scheduler "turn" per session is in
// flight at a time — concurrent clients of one session serialize through its
// queue, so any interleaving of N sessions produces per-session results
// byte-identical to the same commands run serially (the determinism contract
// the serve tests gate).
//
// Fairness: a step is executed at most `quantumCycles` per turn, then the
// turn re-submits itself to the back of the executor's task queue — a
// million-cycle step cannot starve other sessions. Chunking is free:
// the simulator's choice provider is a pure per-(cycle, node, index) hash,
// so step(a); step(b) is bit-identical to step(a+b).
//
// Residency: an admission-control cap bounds in-memory sessions. Opening (or
// restoring) past the cap evicts the least-recently-used idle session to a
// spool record (SimSession::spoolSave — design text + snapshot + perf
// carries, wrapped in the checksummed state_file container); its next
// operation restores it transparently, reports intact. When nothing is
// evictable — or the spool disk refuses the write — the open is refused with
// AdmissionError, never OOM and never a crash.
//
// Durability: with a persistent Config::spoolDir the service recovers on
// construction — replaying the spool journal, re-attaching every session
// whose record verifies, quarantining damaged records (renamed `.corrupt`,
// warning emitted, startup continues). Re-attachment is lazy: recovered
// sessions sit evicted until first touched. Config::durable additionally
// checkpoints a session's record after every completed operation, so a
// SIGKILL at any instant loses at most the operation in flight; without it
// only evicted/drained sessions survive a crash. drainAndSpool() is the
// graceful-shutdown half: in-flight steps abort at their next quantum
// boundary with DrainingError and every resident session is spooled.
//
// Back-pressure: a watching session appends trace text to its outbox each
// quantum; past `streamHighWater` the session parks — no further quanta run —
// until drain() (from any connection) pulls the outbox below half the mark.
// Memory stays bounded; the stream's concatenated bytes stay deterministic.
//
// Lock order: the single manager mutex is never held across session work or
// file IO — turns claim exclusivity with the `running` flag instead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/executor.h"
#include "serve/session.h"
#include "serve/spool.h"

namespace esl::serve {

/// Operation addressed to a session id this service does not know.
class NotFoundError : public EslError {
 public:
  using EslError::EslError;
};

/// Open refused: resident cap reached and no session is evictable, or the
/// spool disk refused the eviction write.
class AdmissionError : public EslError {
 public:
  using EslError::EslError;
};

/// Operation refused or aborted because the service is draining for
/// shutdown. In-flight steps abort at their next quantum boundary; the
/// session's state is spooled, so a restarted daemon resumes it intact.
class DrainingError : public EslError {
 public:
  using EslError::EslError;
};

class Service {
 public:
  struct Config {
    unsigned workers = 0;  ///< executor lanes (0 = one per hardware thread)
    std::size_t maxResident = 256;          ///< admission-control cap
    std::uint64_t quantumCycles = 100'000;  ///< max step cycles per turn
    std::size_t streamHighWater = 1 << 20;  ///< outbox bytes before parking
    std::string spoolDir;  ///< eviction spool; empty = private temp dir
    /// Checkpoint each session's spool record after every completed
    /// operation (requires a persistent spoolDir). Crash loses at most the
    /// operation in flight. Watching sessions are not checkpointed — the
    /// trace letter table is stream state the spool does not carry.
    bool durable = false;
    /// Structured warning sink (recovery reports, checkpoint failures);
    /// defaults to one "esl serve: <message>" line on stderr.
    std::function<void(const std::string&)> warn;
  };

  struct Stats {
    std::uint64_t sessions = 0;   ///< known (resident + evicted)
    std::uint64_t resident = 0;
    std::uint64_t peakResident = 0;
    std::uint64_t opened = 0;
    std::uint64_t evictions = 0;
    std::uint64_t restores = 0;
    std::uint64_t denied = 0;
    std::uint64_t ops = 0;  ///< operations completed across all sessions
    std::uint64_t recovered = 0;    ///< sessions re-attached at startup
    std::uint64_t quarantined = 0;  ///< damaged records renamed .corrupt
  };

  explicit Service(Config config);
  /// Waits for in-flight turns, then drops all sessions; a private temp
  /// spool dir is deleted, a persistent one keeps its records for restart.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Every call below is synchronous: it enqueues onto the session's FIFO (or
  // acts under the manager lock for open/close/drain/stats) and blocks until
  // its result is ready. Errors surface as thrown esl exceptions.

  /// Creates a session. `sid` must be [A-Za-z0-9._-]{1,64} and unused.
  /// Returns a one-line status ("session 's1': 12 nodes, 14 channels\n").
  std::string open(const std::string& sid, NetlistSpec spec,
                   const std::string& origin, SimSession::Options options);
  /// Runs one shell command (SimSession::command) and returns its output.
  std::string command(const std::string& sid, const std::string& line);
  /// Advances `cycles` cycles (quantum-chunked) and returns the run report —
  /// the same bytes the CLI prints after `--sim cycles`.
  std::string step(const std::string& sid, std::uint64_t cycles);
  /// The run report without stepping.
  std::string sinks(const std::string& sid);
  std::string tput(const std::string& sid, const std::string& channel);
  std::uint64_t cycle(const std::string& sid);
  std::vector<std::uint8_t> snapshot(const std::string& sid);
  void restore(const std::string& sid, std::vector<std::uint8_t> bytes);
  /// Watch channels for trace streaming (empty list stops watching).
  /// Watching pins the session resident (the letter table is stream state).
  void watch(const std::string& sid, std::vector<std::string> channels);
  /// Pulls up to `maxBytes` from the stream outbox; sets `*more` when bytes
  /// remain. Unparks the session once the outbox falls below half the
  /// high-water mark.
  std::string drain(const std::string& sid, std::size_t maxBytes, bool* more);
  /// Removes the session. A running turn aborts at its next quantum boundary;
  /// queued operations fail with "session closed". Blocks until removed.
  void close(const std::string& sid);

  /// Graceful-shutdown drain: refuses new operations, aborts in-flight steps
  /// at their next quantum boundary (DrainingError), fails queued operations,
  /// then spools every resident session to the persistent spool directory.
  /// Returns the number of sessions now on disk. Requires a persistent
  /// spoolDir; spool failures are warned and skipped, never fatal.
  std::size_t drainAndSpool();

  std::vector<std::string> sessionIds();
  Stats stats();

 private:
  struct Op {
    std::function<std::string(SimSession&)> fn;  ///< null for step ops
    std::uint64_t stepCycles = 0;                ///< remaining (step ops)
    std::shared_ptr<std::promise<std::string>> done;
  };

  struct Entry {
    std::string id;
    std::unique_ptr<SimSession> session;  ///< null while evicted
    std::string spoolPath;                ///< non-empty while evicted
    std::deque<Op> queue;
    bool running = false;  ///< a turn (or eviction/open) owns `session`
    bool parked = false;   ///< back-pressure: outbox over high water
    bool closing = false;
    bool watching = false;  ///< mirror of session->watching() for eviction
    std::string outbox;    ///< pending stream bytes
    std::uint64_t lastUse = 0;  ///< LRU tick
    std::vector<std::shared_ptr<std::promise<void>>> closeWaiters;
  };

  /// Enqueues `fn` (or a step of `stepCycles`) and waits for the result.
  std::string enqueue(const std::string& sid,
                      std::function<std::string(SimSession&)> fn,
                      std::uint64_t stepCycles = 0);
  /// One scheduler turn for `sid`; runs on an executor lane.
  void runTurn(const std::string& sid);
  /// Claims a residency slot, evicting the LRU idle session if needed.
  /// Throws AdmissionError when over cap with nothing evictable or the
  /// eviction spool write fails.
  void reserveResidency();
  /// Restores an evicted session from its spool record (caller owns the
  /// entry). Validates the record's checksum; damage surfaces as EslError.
  void ensureResident(Entry& e);
  /// Finishes a close: fails queued ops, erases the entry, signals waiters.
  /// Called with the lock held; completes promises after unlocking.
  void finishClose(std::unique_lock<std::mutex>& lk, Entry& e);
  /// Durable-mode checkpoint of a resident session's record (caller owns the
  /// entry via `running`). Failures warn — the operation already succeeded.
  void checkpoint(Entry& e);
  /// Fails every queued op of `e` with DrainingError (lock held; promises
  /// completed after unlocking by the caller-provided sink).
  void failQueueDraining(Entry& e, std::vector<Op>& failed);
  void emitWarning(const std::string& message);

  Entry* findLocked(const std::string& sid);

  Config config_;
  Executor executor_;
  SpoolDir spool_;
  bool ownsSpoolDir_ = false;

  std::mutex m_;
  std::map<std::string, std::unique_ptr<Entry>> table_;
  std::uint64_t tick_ = 0;
  std::size_t resident_ = 0;
  bool draining_ = false;
  Stats stats_{};
};

}  // namespace esl::serve
