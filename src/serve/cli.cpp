#include "serve/cli.h"

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/error.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/state_file.h"

namespace esl::serve {

namespace {

int serveUsage() {
  std::cerr
      << "usage: esl serve --socket PATH [options]\n"
      << "  --socket PATH      Unix socket to listen on (required)\n"
      << "  --workers N        executor lanes (default: hardware threads)\n"
      << "  --max-resident N   resident session cap before LRU eviction\n"
      << "  --quantum N        max step cycles per scheduler turn\n"
      << "  --high-water N     stream outbox bytes before a session parks\n"
      << "  --spool-dir PATH   eviction spool directory (default: temp dir);\n"
      << "                     a persistent dir is recovered on startup and\n"
      << "                     drained to on SIGTERM/SIGINT\n"
      << "  --durable          checkpoint each session after every completed\n"
      << "                     op (needs --spool-dir); crash loses at most\n"
      << "                     the op in flight\n"
      << "  --max-payload N    per-frame payload cap in bytes\n";
  return 1;
}

int clientUsage() {
  std::cerr
      << "usage: esl client --socket PATH [options] [script.txt]\n"
      << "  --timeout MS       per-reply receive deadline (default: none)\n"
      << "  --retries N        extra connect attempts with backoff\n"
      << "  --backoff MS       first retry delay, doubling (default: 100)\n"
      << "reads commands from script.txt (or stdin), one per line:\n"
      << "  open SID DESIGN [compiled] [shards N] [seed N] [no-check]\n"
      << "  open-esl SID FILE.esl [compiled] [shards N] [seed N] [no-check]\n"
      << "  cmd SID COMMAND...     run a shell command in the session\n"
      << "  step SID N             advance N cycles, print the run report\n"
      << "  sinks SID | tput SID CHANNEL | cycle SID\n"
      << "  snapshot SID FILE | restore SID FILE\n"
      << "  watch SID [CHANNEL...] | drain SID\n"
      << "  close SID | stats | shutdown\n"
      << "exit codes: 0 ok, 1 usage, 2 server-reported error,\n"
      << "            3 cannot connect, 4 reply timeout, 5 connection lost\n";
  return 1;
}

std::uint64_t parseNum(const std::string& what, const std::string& value) {
  try {
    if (!value.empty() && value[0] >= '0' && value[0] <= '9') {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(value, &used);
      if (used == value.size()) return v;
    }
  } catch (const std::exception&) {
  }
  throw EslError(what + " expects a number, got '" + value + "'");
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// Trailing [compiled] [shards N] [seed N] [no-check] option words.
SimSession::Options parseOptionWords(const std::vector<std::string>& t,
                                     std::size_t from) {
  SimSession::Options opts;
  for (std::size_t i = from; i < t.size(); ++i) {
    if (t[i] == "compiled") {
      opts.backend = SimContext::Backend::kCompiled;
    } else if (t[i] == "interpreted") {
      opts.backend = SimContext::Backend::kInterpreted;
    } else if (t[i] == "no-check") {
      opts.checkProtocol = false;
    } else if (t[i] == "cross-check") {
      opts.crossCheck = true;
    } else if (t[i] == "shards" && i + 1 < t.size()) {
      opts.shards = static_cast<unsigned>(parseNum("shards", t[++i]));
    } else if (t[i] == "seed" && i + 1 < t.size()) {
      opts.seed = parseNum("seed", t[++i]);
    } else {
      throw EslError("unknown open option '" + t[i] + "'");
    }
  }
  return opts;
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ESL_CHECK(static_cast<bool>(in), "cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Executes one client-script line; returns false on `shutdown` (end of
/// script: the server is gone).
bool clientLine(Client& client, const std::string& line) {
  const std::vector<std::string> t = tokenize(line);
  if (t.empty() || t[0][0] == '#') return true;
  const std::string& verb = t[0];
  const auto arg = [&](std::size_t i) -> const std::string& {
    ESL_CHECK(i < t.size(), "'" + verb + "' needs more arguments");
    return t[i];
  };
  if (verb == "open") {
    std::cerr << client.openDesign(arg(1), arg(2), parseOptionWords(t, 3));
  } else if (verb == "open-esl") {
    std::cerr << client.openEsl(arg(1), readWholeFile(arg(2)), arg(2),
                                parseOptionWords(t, 3));
  } else if (verb == "cmd") {
    // The command is everything after the verb and sid tokens.
    std::size_t at = line.find_first_not_of(" \t") + verb.size();
    at = line.find_first_not_of(" \t", at) + arg(1).size();
    at = line.find_first_not_of(" \t", at);
    ESL_CHECK(at != std::string::npos, "cmd needs a command");
    std::cout << client.cmd(t[1], line.substr(at));
  } else if (verb == "step") {
    std::cout << client.step(arg(1), parseNum("step", arg(2)));
  } else if (verb == "sinks") {
    std::cout << client.sinks(arg(1));
  } else if (verb == "tput") {
    std::cout << client.tput(arg(1), arg(2));
  } else if (verb == "cycle") {
    std::cout << client.cycle(arg(1)) << "\n";
  } else if (verb == "snapshot") {
    sim::writeSnapshotFile(arg(2), client.snapshot(t[1]));
    std::cerr << "snapshot of '" << t[1] << "' written to '" << t[2] << "'\n";
  } else if (verb == "restore") {
    client.restore(arg(1), sim::readSnapshotFile(arg(2)));
    std::cerr << "session '" << t[1] << "' restored from '" << t[2] << "'\n";
  } else if (verb == "watch") {
    client.watch(arg(1), std::vector<std::string>(t.begin() + 2, t.end()));
  } else if (verb == "drain") {
    std::cout << client.drainAll(arg(1));
  } else if (verb == "close") {
    client.close(arg(1));
  } else if (verb == "stats") {
    const json::Value s = client.stats();
    std::cout << "sessions=" << s.find("sessions")->asU64()
              << " resident=" << s.find("resident")->asU64()
              << " peak-resident=" << s.find("peak-resident")->asU64()
              << " evictions=" << s.find("evictions")->asU64()
              << " restores=" << s.find("restores")->asU64()
              << " denied=" << s.find("denied")->asU64()
              << " recovered=" << s.find("recovered")->asU64()
              << " quarantined=" << s.find("quarantined")->asU64() << "\n";
  } else if (verb == "shutdown") {
    client.shutdownServer();
    return false;
  } else {
    throw EslError("unknown client command '" + verb + "'");
  }
  return true;
}

// Write end of the shutdown self-pipe; the only thing the signal handler
// touches (write() is async-signal-safe, Server::requestDrainStop is not).
int gSignalPipeWrite = -1;

extern "C" void onTermSignal(int) {
  const char byte = 's';
  if (gSignalPipeWrite >= 0) {
    const ssize_t r = ::write(gSignalPipeWrite, &byte, 1);
    (void)r;
  }
}

}  // namespace

int serveMain(int argc, char** argv) {
  Server::Config config;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "esl serve: " << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket")
        config.socketPath = value();
      else if (arg == "--workers")
        config.service.workers = static_cast<unsigned>(parseNum(arg, value()));
      else if (arg == "--max-resident")
        config.service.maxResident =
            static_cast<std::size_t>(parseNum(arg, value()));
      else if (arg == "--quantum")
        config.service.quantumCycles = parseNum(arg, value());
      else if (arg == "--high-water")
        config.service.streamHighWater =
            static_cast<std::size_t>(parseNum(arg, value()));
      else if (arg == "--spool-dir")
        config.service.spoolDir = value();
      else if (arg == "--durable")
        config.service.durable = true;
      else if (arg == "--max-payload")
        config.maxPayloadBytes = parseNum(arg, value());
      else if (arg == "--help" || arg == "-h")
        return serveUsage(), 0;
      else
        return std::cerr << "esl serve: unknown option " << arg << "\n",
               serveUsage();
    } catch (const std::exception& e) {
      std::cerr << "esl serve: " << e.what() << "\n";
      return 1;
    }
  }
  if (config.socketPath.empty()) return serveUsage();
  const bool persistentSpool = !config.service.spoolDir.empty();
  try {
    Server server(std::move(config));

    // SIGTERM/SIGINT ride a self-pipe: the handler writes one byte, a
    // watcher thread turns it into a graceful drain-stop (spooling every
    // resident session when the spool dir is persistent).
    int pipeFds[2];
    ESL_CHECK(::pipe(pipeFds) == 0, "cannot create the signal pipe");
    gSignalPipeWrite = pipeFds[1];
    struct sigaction sa {};
    sa.sa_handler = onTermSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    std::thread watcher([&server, persistentSpool, readFd = pipeFds[0]] {
      char byte = 0;
      while (::read(readFd, &byte, 1) == 1) {
        if (byte != 's') return;  // 'q' from main: run() already returned
        std::cerr << "esl serve: signal received, "
                  << (persistentSpool ? "draining sessions to spool\n"
                                      : "shutting down\n");
        if (persistentSpool)
          server.requestDrainStop();
        else
          server.requestStop();
      }
    });

    // The smoke/bench harnesses wait for this line before connecting.
    std::cout << "esl serve: listening on " << server.socketPath() << std::endl;
    server.run();

    const char quit = 'q';
    const ssize_t r = ::write(pipeFds[1], &quit, 1);
    (void)r;
    watcher.join();
    gSignalPipeWrite = -1;
    ::close(pipeFds[0]);
    ::close(pipeFds[1]);
  } catch (const std::exception& e) {
    std::cerr << "esl serve: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

int clientMain(int argc, char** argv) {
  std::string socketPath, scriptPath;
  Client::Options options;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "esl client: " << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") {
        socketPath = value();
      } else if (arg == "--timeout") {
        options.timeoutMs = parseNum(arg, value());
      } else if (arg == "--retries") {
        options.retries = static_cast<unsigned>(parseNum(arg, value()));
      } else if (arg == "--backoff") {
        options.backoffMs = parseNum(arg, value());
      } else if (arg == "--help" || arg == "-h") {
        return clientUsage(), 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "esl client: unknown option " << arg << "\n";
        return clientUsage();
      } else if (scriptPath.empty()) {
        scriptPath = arg;
      } else {
        std::cerr << "esl client: more than one script\n";
        return clientUsage();
      }
    } catch (const std::exception& e) {
      std::cerr << "esl client: " << e.what() << "\n";
      return 1;
    }
  }
  if (socketPath.empty()) return clientUsage();
  std::ifstream file;
  if (!scriptPath.empty()) {
    file.open(scriptPath);
    if (!file) {
      std::cerr << "esl client: cannot read '" << scriptPath << "'\n";
      return 1;
    }
  }
  std::istream& script = scriptPath.empty() ? std::cin : file;
  std::string line;
  const auto fail = [&line](const std::exception& e, int code) {
    std::cerr << "esl client: " << (line.empty() ? "" : line + ": ") << e.what()
              << "\n";
    return code;
  };
  // Exit codes are part of the contract (see --help): scripts driving the
  // daemon distinguish "it told me no" from "it is not there" from "it died
  // under me" without parsing stderr.
  try {
    Client client(socketPath, options);
    while (std::getline(script, line)) {
      if (!clientLine(client, line)) break;
    }
  } catch (const ConnectError& e) {
    return fail(e, 3);
  } catch (const TimeoutError& e) {
    return fail(e, 4);
  } catch (const ConnectionLostError& e) {
    return fail(e, 5);
  } catch (const std::exception& e) {
    return fail(e, 2);
  }
  return 0;
}

}  // namespace esl::serve
