// SimSession: one serve-daemon session — a design plus a persistent simulator.
//
// Where the shell's `sim` verb builds a throwaway Simulator per command, a
// serve session keeps one alive across commands so `step 1000` twice equals
// `--sim 2000` once: the choice provider is a pure function of (seed, cycle,
// node, index), so chunking a run into quanta is identity-preserving by
// construction. Transform and query verbs reuse the shell's command language
// (shell::Session on the same netlist); verbs that would replace the netlist
// under the live simulator (build/load/undo/redo) or spin up a second
// SimContext over the same node objects (sim/tput/trace) are rejected —
// serve has its own step/query surface.
//
// Sessions can leave memory and come back: spoolSave() writes the transformed
// design (`.esl` text), the packState() snapshot, and the perf-side carries —
// sink transfer counts, per-channel stats, violation text — that packState()
// deliberately excludes; spoolLoad() rebuilds a session whose every
// subsequent report, tput and snapshot is byte-identical to one that never
// left. This is the LRU eviction path of serve::Service and the migration
// path between daemons.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shell/session.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace esl::serve {

class SimSession {
 public:
  struct Options {
    SimContext::Backend backend = SimContext::Backend::kInterpreted;
    unsigned shards = 1;
    std::uint64_t seed = 0x5e1fULL;
    bool checkProtocol = true;
    bool crossCheck = false;
  };

  /// Builds the design and the persistent simulator. `origin` labels the
  /// design in status output and spool records.
  SimSession(NetlistSpec spec, const std::string& origin, Options options);

  const std::string& origin() const { return origin_; }
  const Options& options() const { return options_; }
  Netlist& netlist() { return *shell_.netlist(); }
  std::uint64_t cycle() const { return sim_->cycle(); }

  /// Runs one shell command (transform/query surface). Returns the shell's
  /// printable output; throws EslError for forbidden verbs (see above).
  /// Shell-internal errors come back as "error: ..." text, shell-style.
  std::string command(const std::string& line);

  /// Advances the persistent simulator. The serve scheduler calls this one
  /// bounded quantum at a time; N calls of 1 cycle equal one call of N.
  void step(std::uint64_t cycles);

  /// Sink transfer totals + violation count, carries included — the same
  /// bytes the CLI's `--sim N` run prints for the same cumulative history.
  std::string report();
  /// "throughput(<ch>) = <x.xxxx>\n", carries included (CLI `--tput` format).
  std::string tputLine(const std::string& channel);
  std::uint64_t violationCount();

  // --- Snapshots -------------------------------------------------------------

  /// packState() bytes (versioned header included).
  std::vector<std::uint8_t> snapshot();
  /// Replaces the simulator with a fresh one and restores `bytes` — CLI
  /// `--load-state` semantics: perf logs (transfer counts, stats, carries)
  /// restart at zero, sequential state and the cycle counter come from the
  /// snapshot. Throws EslError on a foreign or version-mismatched snapshot.
  void restore(const std::vector<std::uint8_t>& bytes);

  // --- Trace streaming -------------------------------------------------------

  /// Watches channels for the per-cycle trace stream; replaces any previous
  /// watch set. Watching sessions are not evictable (the letter table is
  /// stream state the spool does not carry).
  void watch(const std::vector<std::string>& channels);
  bool watching() const { return trace_ != nullptr; }
  /// Lines captured since the last drain (see TraceRecorder::drainStreamText).
  std::string drainStream();

  // --- Eviction spool --------------------------------------------------------

  static constexpr std::uint32_t kSpoolMagic = 0xE5150001u;
  static constexpr std::uint32_t kSpoolVersion = 1;

  std::vector<std::uint8_t> spoolSave();
  static std::unique_ptr<SimSession> spoolLoad(
      const std::vector<std::uint8_t>& record);

 private:
  void makeSimulator();

  std::string origin_;
  Options options_;
  shell::Session shell_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::TraceRecorder> trace_;

  // Perf-side history carried across evict/restore (packState() excludes it).
  std::map<std::string, std::uint64_t> sinkCarry_;
  std::map<std::string, sim::ChannelStats> statCarry_;
  std::uint64_t violationCarry_ = 0;
};

}  // namespace esl::serve
