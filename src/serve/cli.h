// Command-line front-ends for the serve subsystem, dispatched from the `esl`
// driver: `esl serve --socket PATH ...` runs the daemon, `esl client --socket
// PATH [script]` drives it with a line-oriented mini-language (one command
// per line, '#' comments) whose outputs byte-match the one-shot CLI — which
// is what lets the CI smoke diff a served session against `esl --sim`.
#pragma once

namespace esl::serve {

/// `esl serve`: runs the daemon until a client sends the shutdown op.
/// argv excludes the "serve" word itself.
int serveMain(int argc, char** argv);

/// `esl client`: executes a script (file argument, or stdin) against a
/// daemon. Command outputs go to stdout verbatim; status goes to stderr.
int clientMain(int argc, char** argv);

}  // namespace esl::serve
