// The serve wire protocol: newline-delimited JSON frames over a local socket.
//
// Every frame is one line of compact JSON (the head). A head carrying a
// "bytes": N field is followed by exactly N raw payload bytes and then one
// mandatory '\n' — that is how `.esl` design text, snapshots and drained
// trace streams travel without any escaping (and why payload sizes cannot be
// smuggled: the JSON parser rejects duplicate keys, the reader trusts only
// the declared length).
//
// Connection lifecycle: the server greets with {"serve":"esl","proto":V};
// the client's first request must be {"op":"hello","proto":V} with the same
// version, else the server answers an error frame and hangs up. After the
// handshake, requests carry a client-chosen "id" echoed in the response:
//   {"id":3,"op":"step","session":"s1","cycles":1000}
//   {"id":3,"ok":true,"text":"sink 'snk': 994 transfers\n...","cycle":1000}
// Failures map esl exception types onto stable error kinds:
//   {"id":3,"ok":false,"error":{"kind":"not-found","message":"no session 's1'"}}
#pragma once

#include <string>

#include "base/error.h"
#include "serve/json.h"

namespace esl::serve {

inline constexpr std::uint64_t kProtocolVersion = 1;
/// Default payload cap (a corrupt length must not allocate the moon). Frames
/// declaring more bytes than the reader's cap are rejected before any
/// allocation happens.
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

/// A read deadline expired (SO_RCVTIMEO on the client socket). Distinct from
/// ProtocolError so callers can map it to its own exit code.
class TimeoutError : public EslError {
 public:
  using EslError::EslError;
};

/// One frame: the JSON head plus the optional raw payload block.
struct Frame {
  json::Value head;
  std::string payload;
};

/// Buffered frame reader over a socket/pipe fd (fd stays owned by the caller).
class FrameReader {
 public:
  explicit FrameReader(int fd, std::uint64_t maxPayload = kMaxPayloadBytes)
      : fd_(fd), maxPayload_(maxPayload) {}

  /// Reads one frame. Returns false on clean EOF at a frame boundary; throws
  /// ProtocolError on mid-frame EOF, oversized payloads or framing damage,
  /// ParseError on malformed head JSON, TimeoutError when the fd's receive
  /// deadline expires.
  bool read(Frame& out);

 private:
  bool fillSome();  ///< false on EOF

  int fd_;
  std::uint64_t maxPayload_;
  std::string buf_;
  std::size_t pos_ = 0;
};

/// Writes one frame (appending "bytes" to the head when `payload` is
/// non-empty). Loops over partial writes; throws ProtocolError on error.
void writeFrame(int fd, json::Value head, const std::string& payload = {});

/// The server's greeting head.
json::Value greetingHead();

/// Stable protocol error kind for an exception (maps the esl::Error
/// hierarchy; anything unknown is "internal").
std::string errorKind(const std::exception& e);

/// Builds {"id":id,"ok":false,"error":{...}} (id omitted when `hasId` false).
json::Value errorHead(bool hasId, std::uint64_t id, const std::string& kind,
                      const std::string& message);

}  // namespace esl::serve
