#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "base/error.h"

namespace esl::serve {

namespace {

int connectOnce(const std::string& socketPath, std::string& why) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ESL_CHECK(fd >= 0, std::string("cannot create socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    why = std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connectTo(const std::string& socketPath, const Client::Options& options) {
  ESL_CHECK(socketPath.size() < sizeof(sockaddr_un{}.sun_path),
            "socket path too long: '" + socketPath + "'");
  std::string why;
  std::uint64_t delayMs = options.backoffMs == 0 ? 1 : options.backoffMs;
  for (unsigned attempt = 0;; ++attempt) {
    const int fd = connectOnce(socketPath, why);
    if (fd >= 0) {
      if (options.timeoutMs > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(options.timeoutMs / 1000);
        tv.tv_usec = static_cast<suseconds_t>((options.timeoutMs % 1000) * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
      }
      return fd;
    }
    if (attempt >= options.retries)
      throw ConnectError("cannot connect to '" + socketPath + "' after " +
                         std::to_string(attempt + 1) + " attempt(s): " + why);
    std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    delayMs = std::min<std::uint64_t>(delayMs * 2, 10'000);  // bounded backoff
  }
}

void setOptionFields(json::Value& head, const SimSession::Options& options) {
  const SimSession::Options defaults;
  if (options.backend == SimContext::Backend::kCompiled)
    head.set("backend", json::Value::str("compiled"));
  if (options.shards != defaults.shards)
    head.set("shards", json::Value::number(std::uint64_t{options.shards}));
  if (options.seed != defaults.seed)
    head.set("seed", json::Value::number(options.seed));
  if (options.checkProtocol != defaults.checkProtocol)
    head.set("check", json::Value::boolean(options.checkProtocol));
  if (options.crossCheck != defaults.crossCheck)
    head.set("cross-check", json::Value::boolean(options.crossCheck));
}

std::string textOf(const json::Value& reply) {
  const json::Value* text = reply.find("text");
  return text != nullptr ? text->asString() : std::string();
}

}  // namespace

Client::Client(const std::string& socketPath, const Options& options)
    : fd_(connectTo(socketPath, options)), reader_(fd_) {
  try {
    Frame greeting;
    if (!reader_.read(greeting))
      throw ConnectionLostError("server hung up before greeting");
    const json::Value* proto = greeting.head.find("proto");
    ESL_CHECK(proto != nullptr, "malformed server greeting");
    json::Value hello = json::Value::object();
    hello.set("op", json::Value::str("hello"));
    hello.set("proto", json::Value::number(kProtocolVersion));
    request(std::move(hello));
  } catch (...) {
    ::close(fd_);
    throw;
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

json::Value Client::request(json::Value head, const std::string& payload,
                            std::string* payloadOut) {
  const std::uint64_t id = nextId_++;
  head.set("id", json::Value::number(id));
  Frame reply;
  // Transport damage (EPIPE on the send, a torn or missing reply) means the
  // daemon died mid-command: surface it as ConnectionLostError so callers
  // can retry against a restarted daemon. A reply deadline (TimeoutError)
  // passes through untouched.
  try {
    writeFrame(fd_, std::move(head), payload);
    if (!reader_.read(reply))
      throw ConnectionLostError("server hung up mid-request");
  } catch (const TimeoutError&) {
    throw;
  } catch (const ProtocolError& e) {
    throw ConnectionLostError(std::string("connection lost mid-request: ") +
                              e.what());
  }
  const json::Value* rid = reply.head.find("id");
  ESL_CHECK(rid != nullptr && rid->asU64() == id,
            "response id does not match the request");
  const json::Value* ok = reply.head.find("ok");
  ESL_CHECK(ok != nullptr, "malformed response (no 'ok')");
  if (!ok->asBool()) {
    std::string kind = "error";
    std::string message = "unknown server error";
    if (const json::Value* err = reply.head.find("error")) {
      if (const json::Value* k = err->find("kind")) kind = k->asString();
      if (const json::Value* m = err->find("message")) message = m->asString();
    }
    throw ServerError(kind, message);
  }
  if (payloadOut != nullptr) *payloadOut = std::move(reply.payload);
  return std::move(reply.head);
}

json::Value Client::sessionHead(const std::string& op, const std::string& sid) {
  json::Value head = json::Value::object();
  head.set("op", json::Value::str(op));
  head.set("session", json::Value::str(sid));
  return head;
}

std::string Client::openDesign(const std::string& sid, const std::string& design,
                               const SimSession::Options& options) {
  json::Value head = sessionHead("open", sid);
  head.set("design", json::Value::str(design));
  setOptionFields(head, options);
  return textOf(request(std::move(head)));
}

std::string Client::openEsl(const std::string& sid, const std::string& eslText,
                            const std::string& origin,
                            const SimSession::Options& options) {
  json::Value head = sessionHead("open", sid);
  head.set("origin", json::Value::str(origin));
  setOptionFields(head, options);
  return textOf(request(std::move(head), eslText));
}

std::string Client::cmd(const std::string& sid, const std::string& line) {
  json::Value head = sessionHead("cmd", sid);
  head.set("line", json::Value::str(line));
  return textOf(request(std::move(head)));
}

std::string Client::step(const std::string& sid, std::uint64_t cycles) {
  json::Value head = sessionHead("step", sid);
  head.set("cycles", json::Value::number(cycles));
  return textOf(request(std::move(head)));
}

std::string Client::sinks(const std::string& sid) {
  json::Value head = sessionHead("query", sid);
  head.set("what", json::Value::str("sinks"));
  return textOf(request(std::move(head)));
}

std::string Client::tput(const std::string& sid, const std::string& channel) {
  json::Value head = sessionHead("query", sid);
  head.set("what", json::Value::str("tput"));
  head.set("channel", json::Value::str(channel));
  return textOf(request(std::move(head)));
}

std::uint64_t Client::cycle(const std::string& sid) {
  json::Value head = sessionHead("query", sid);
  head.set("what", json::Value::str("cycle"));
  const json::Value reply = request(std::move(head));
  const json::Value* cycle = reply.find("cycle");
  ESL_CHECK(cycle != nullptr, "malformed cycle reply");
  return cycle->asU64();
}

std::vector<std::uint8_t> Client::snapshot(const std::string& sid) {
  std::string payload;
  request(sessionHead("snapshot", sid), {}, &payload);
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

void Client::restore(const std::string& sid,
                     const std::vector<std::uint8_t>& bytes) {
  request(sessionHead("restore", sid),
          std::string(bytes.begin(), bytes.end()));
}

void Client::watch(const std::string& sid,
                   const std::vector<std::string>& channels) {
  json::Value head = sessionHead("watch", sid);
  json::Value chs = json::Value::array();
  for (const std::string& ch : channels) chs.push(json::Value::str(ch));
  head.set("channels", std::move(chs));
  request(std::move(head));
}

bool Client::drainOnce(const std::string& sid, std::string& out,
                       std::uint64_t maxBytes) {
  json::Value head = sessionHead("drain", sid);
  head.set("max", json::Value::number(maxBytes));
  std::string payload;
  const json::Value reply = request(std::move(head), {}, &payload);
  out += payload;
  const json::Value* more = reply.find("more");
  return more != nullptr && more->asBool();
}

std::string Client::drainAll(const std::string& sid) {
  std::string out;
  while (drainOnce(sid, out)) {
  }
  return out;
}

void Client::close(const std::string& sid) { request(sessionHead("close", sid)); }

json::Value Client::stats() {
  json::Value head = json::Value::object();
  head.set("op", json::Value::str("stats"));
  return request(std::move(head));
}

void Client::shutdownServer() {
  json::Value head = json::Value::object();
  head.set("op", json::Value::str("shutdown"));
  request(std::move(head));
}

}  // namespace esl::serve
