// Interactive exploration shell (paper §5).
//
// "Given an abstract netlist ... our toolkit can apply all of the known
// correct-by-construction transformations under the user guidance in the form
// of command scripts within an interactive shell. ... The user can perform
// transformations, visualize the modified graph, undo and redo the
// transformations. At any point, it is possible to generate a Verilog netlist
// of the elastic controller ... or a NuSMV model for verification."
//
// Session interprets that command language. Undo/redo is implemented by
// deterministic replay: the session keeps the base design name plus the list
// of applied transformation commands and rebuilds from scratch on undo —
// transformations are cheap ("all transformations are local they are very
// fast to compute"), so replay is instantaneous.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "elastic/netlist.h"
#include "elastic/registry.h"

namespace esl::shell {

class Session {
 public:
  Session();

  /// Executes one command line; returns the printable result. Errors are
  /// reported in the returned text (prefixed "error:"), never thrown.
  std::string execute(const std::string& line);

  /// Runs a newline-separated script ('#' starts a comment). Returns the
  /// concatenated output; each command is echoed with a "esl> " prompt.
  std::string runScript(const std::string& script);

  /// Loads an already-parsed spec as the session's base design — the `load`
  /// verb minus the filesystem (stdin designs via `esl -`, the serve daemon's
  /// inline `.esl` bodies). `origin` labels the design in status output.
  /// Returns the "loaded ..." status line; throws NetlistError on bad specs.
  std::string loadSpec(NetlistSpec spec, const std::string& origin);

  /// Current design (nullptr before the first `build`).
  Netlist* netlist() { return netlist_.get(); }

  /// One-line summary of every available command.
  static std::string helpText();
  /// Names accepted by `build`.
  static std::vector<std::string> designNames();

 private:
  std::string dispatch(const std::string& line, bool replaying);
  void rebuildAndReplay();
  std::unique_ptr<Netlist> buildBase() const;

  /// Undo/redo replays from the base design: either a named builder
  /// (`build`) or a loaded `.esl` spec (`load`) — the spec IS the session's
  /// base state, which is what makes load/undo composable.
  std::string baseDesign_;
  std::optional<NetlistSpec> baseSpec_;
  std::vector<std::string> applied_;  ///< mutating commands, replay order
  std::vector<std::string> undone_;   ///< redo stack
  std::unique_ptr<Netlist> netlist_;
};

}  // namespace esl::shell
