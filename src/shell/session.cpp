#include "shell/session.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "backend/blif.h"
#include "backend/smv.h"
#include "backend/verilog.h"
#include "frontend/esl_format.h"
#include "netlist/dot.h"
#include "netlist/patterns.h"
#include "perf/area.h"
#include "perf/throughput.h"
#include "perf/timing.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "transform/transform.h"

namespace esl::shell {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    tokens.push_back(t);
  }
  return tokens;
}

/// Resolves the scheduler through the Registry catalog (one source of truth
/// with `.esl` `sched=` attributes); `staticN` maps to `static` + pick.
std::unique_ptr<sched::Scheduler> makeSched(const std::string& name, unsigned k) {
  Params p;
  if (name.empty() || name.rfind("static", 0) == 0) {
    p.set("sched", "static");
    if (name.size() > 6) p.set("sched.pick", name.substr(6));
  } else {
    p.set("sched", name);
  }
  try {
    return Registry::instance().makeSched(k, p, "sched");
  } catch (const NetlistError&) {
    throw EslError("unknown scheduler '" + name +
                   "' (static0|static1|rr|last|2bit|timeout|bounded-fair|starving)");
  }
}

Node& findNodeOrThrow(Netlist& nl, const std::string& name) {
  Node* n = nl.findNode(name);
  ESL_CHECK(n != nullptr, "no node named '" + name + "'");
  return *n;
}

ChannelId findChannelOrThrow(const Netlist& nl, const std::string& name) {
  const Channel* ch = nl.findChannel(name);
  ESL_CHECK(ch != nullptr, "no channel named '" + name + "'");
  return ch->id;
}

/// Commands that change the design (recorded for replay-undo).
bool isMutating(const std::string& verb) {
  return verb == "bubble" || verb == "unbubble" || verb == "retime-back" ||
         verb == "retime-fwd" || verb == "shannon" || verb == "early" ||
         verb == "speculate";
}

}  // namespace

Session::Session() = default;

std::vector<std::string> Session::designNames() { return patterns::designNames(); }

std::unique_ptr<Netlist> Session::buildBase() const {
  if (baseSpec_) return std::make_unique<Netlist>(baseSpec_->build());
  return std::make_unique<Netlist>(patterns::buildDesign(baseDesign_));
}

std::string Session::helpText() {
  return
      "commands:\n"
      "  build <design>            load a base design (see `designs`)\n"
      "  load <file.esl>           load a design from a textual netlist file\n"
      "  save <file.esl>           write the current design as .esl\n"
      "  print                     print the current design as .esl text\n"
      "  designs                   list base designs\n"
      "  nodes | channels          list the current graph\n"
      "  candidates                speculation candidates (mux+func pairs)\n"
      "  bubble <channel>          insert an empty EB on a channel\n"
      "  unbubble <node>           remove an empty EB\n"
      "  retime-back <eb>          move an empty EB to the inputs of its producer\n"
      "  retime-fwd <func>         move input EBs of a function to its output\n"
      "  shannon <mux> <func>      Shannon decomposition (mux retiming)\n"
      "  early <mux>               convert a join mux to early evaluation\n"
      "  speculate <mux> <func> [sched]   full speculation recipe\n"
      "  undo | redo               replay-based undo/redo of transformations\n"
      "  sim <cycles> [shards|compiled|interpreted|cross-check]\n"
      "                            simulate; report sink transfers + violations\n"
      "  tput <cycles> <channel>   measured throughput on a channel\n"
      "  trace <cycles> <ch...>    Table-1 style trace of selected channels\n"
      "  timing                    cycle time + critical path\n"
      "  bound                     analytic throughput bound (min cycle ratio)\n"
      "  area                      area report (NAND2 equivalents)\n"
      "  dot | verilog | smv | blif  emit the corresponding artifact\n"
      "  help                      this text\n";
}

std::string Session::execute(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return "";
  try {
    const std::string out = dispatch(line, /*replaying=*/false);
    if (isMutating(tokens[0])) {
      applied_.push_back(line);
      undone_.clear();
    }
    return out;
  } catch (const EslError& e) {
    return std::string("error: ") + e.what() + "\n";
  }
}

std::string Session::runScript(const std::string& script) {
  std::istringstream is(script);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    std::string trimmed = tokens[0];
    for (std::size_t i = 1; i < tokens.size(); ++i) trimmed += " " + tokens[i];
    os << "esl> " << trimmed << "\n" << execute(trimmed);
  }
  return os.str();
}

std::string Session::loadSpec(NetlistSpec spec, const std::string& origin) {
  netlist_ = std::make_unique<Netlist>(spec.build());
  baseSpec_ = std::move(spec);
  baseDesign_ = origin;
  applied_.clear();
  undone_.clear();
  std::ostringstream os;
  os << "loaded '" << origin << "': " << netlist_->nodeIds().size() << " nodes, "
     << netlist_->channelIds().size() << " channels\n";
  return os.str();
}

void Session::rebuildAndReplay() {
  netlist_ = buildBase();
  for (const std::string& cmd : applied_) dispatch(cmd, /*replaying=*/true);
}

std::string Session::dispatch(const std::string& line, bool replaying) {
  const auto t = tokenize(line);
  const std::string& verb = t[0];
  std::ostringstream os;

  if (verb == "help") return helpText();
  if (verb == "designs") {
    for (const auto& d : designNames()) os << d << "\n";
    return os.str();
  }
  if (verb == "build") {
    ESL_CHECK(t.size() == 2, "usage: build <design>");
    netlist_ = std::make_unique<Netlist>(patterns::buildDesign(t[1]));
    baseDesign_ = t[1];
    baseSpec_.reset();
    applied_.clear();
    undone_.clear();
    os << "loaded '" << t[1] << "': " << netlist_->nodeIds().size() << " nodes, "
       << netlist_->channelIds().size() << " channels\n";
    return os.str();
  }
  if (verb == "load") {
    ESL_CHECK(t.size() == 2, "usage: load <file.esl>");
    return loadSpec(frontend::parseEslFile(t[1]), t[1]);
  }

  ESL_CHECK(netlist_ != nullptr, "no design loaded (use `build <design>`)");
  Netlist& nl = *netlist_;

  if (verb == "undo") {
    ESL_CHECK(!applied_.empty(), "nothing to undo");
    undone_.push_back(applied_.back());
    applied_.pop_back();
    rebuildAndReplay();
    return "undone: " + undone_.back() + "\n";
  }
  if (verb == "redo") {
    ESL_CHECK(!undone_.empty(), "nothing to redo");
    const std::string cmd = undone_.back();
    undone_.pop_back();
    dispatch(cmd, /*replaying=*/true);
    applied_.push_back(cmd);
    return "redone: " + cmd + "\n";
  }

  if (verb == "nodes") {
    for (const NodeId id : nl.nodeIds()) {
      const Node& n = nl.node(id);
      os << std::setw(4) << id << "  " << std::left << std::setw(18) << n.name()
         << std::right << " (" << n.kindName() << ")\n";
    }
    return os.str();
  }
  if (verb == "channels") {
    for (const ChannelId id : nl.channelIds()) {
      const Channel& ch = nl.channel(id);
      os << std::setw(4) << id << "  " << std::left << std::setw(18) << ch.name
         << std::right << " [" << ch.width << "]  " << nl.node(ch.producer).name()
         << " -> " << nl.node(ch.consumer).name() << "\n";
    }
    return os.str();
  }
  if (verb == "candidates") {
    for (const auto& c : transform::findSpeculationCandidates(nl))
      os << "mux=" << nl.node(c.mux).name() << " func=" << nl.node(c.func).name()
         << (c.onCriticalCycle ? "  [on critical cycle through select]" : "") << "\n";
    return os.str();
  }
  if (verb == "bubble") {
    ESL_CHECK(t.size() == 2, "usage: bubble <channel>");
    auto& eb = transform::insertBubble(nl, findChannelOrThrow(nl, t[1]));
    return replaying ? "" : "inserted bubble '" + eb.name() + "'\n";
  }
  if (verb == "unbubble") {
    ESL_CHECK(t.size() == 2, "usage: unbubble <node>");
    transform::removeBubble(nl, findNodeOrThrow(nl, t[1]).id());
    return replaying ? "" : "removed bubble '" + t[1] + "'\n";
  }
  if (verb == "retime-back") {
    ESL_CHECK(t.size() == 2, "usage: retime-back <eb>");
    const auto ebs = transform::retimeBackward(nl, findNodeOrThrow(nl, t[1]).id());
    return replaying ? "" : "retimed into " + std::to_string(ebs.size()) + " EB(s)\n";
  }
  if (verb == "retime-fwd") {
    ESL_CHECK(t.size() == 2, "usage: retime-fwd <func>");
    transform::retimeForward(nl, findNodeOrThrow(nl, t[1]).id());
    return replaying ? "" : "retimed forward across '" + t[1] + "'\n";
  }
  if (verb == "shannon") {
    ESL_CHECK(t.size() == 3, "usage: shannon <mux> <func>");
    const auto r = transform::shannonDecompose(nl, findNodeOrThrow(nl, t[1]).id(),
                                               findNodeOrThrow(nl, t[2]).id());
    return replaying ? "" : "duplicated into " + std::to_string(r.copies.size()) +
                                " copies\n";
  }
  if (verb == "early") {
    ESL_CHECK(t.size() == 2, "usage: early <mux>");
    transform::convertToEarlyEval(nl, findNodeOrThrow(nl, t[1]).id());
    return replaying ? "" : "converted '" + t[1] + "' to early evaluation\n";
  }
  if (verb == "speculate") {
    ESL_CHECK(t.size() == 3 || t.size() == 4, "usage: speculate <mux> <func> [sched]");
    const NodeId shared = transform::speculate(
        nl, findNodeOrThrow(nl, t[1]).id(), findNodeOrThrow(nl, t[2]).id(),
        makeSched(t.size() == 4 ? t[3] : "", 2));
    return replaying ? "" : "speculation applied; shared module '" +
                                nl.node(shared).name() + "'\n";
  }

  if (verb == "sim") {
    ESL_CHECK(t.size() >= 2,
              "usage: sim <cycles> [shards|compiled|interpreted|cross-check]");
    sim::SimOptions opts{.checkProtocol = true, .throwOnViolation = false};
    for (std::size_t i = 2; i < t.size(); ++i) {
      if (t[i] == "compiled")
        opts.backend = SimContext::Backend::kCompiled;
      else if (t[i] == "interpreted")
        opts.backend = SimContext::Backend::kInterpreted;
      else if (t[i] == "cross-check")
        opts.crossCheckKernels = true;
      else
        opts.shards = static_cast<unsigned>(std::stoul(t[i]));
    }
    sim::Simulator s(nl, opts);
    s.run(std::stoull(t[1]));
    return sim::runReport(nl, s.ctx());
  }
  if (verb == "tput") {
    ESL_CHECK(t.size() == 3, "usage: tput <cycles> <channel>");
    sim::Simulator s(nl, {.checkProtocol = false});
    const ChannelId ch = findChannelOrThrow(nl, t[2]);
    s.run(std::stoull(t[1]));
    os << "throughput(" << t[2] << ") = " << std::fixed << std::setprecision(4)
       << s.throughput(ch) << "\n";
    return os.str();
  }
  if (verb == "trace") {
    ESL_CHECK(t.size() >= 3, "usage: trace <cycles> <channel...>");
    sim::TraceRecorder trace;
    for (std::size_t i = 2; i < t.size(); ++i)
      trace.addChannel(findChannelOrThrow(nl, t[i]), t[i]);
    sim::Simulator s(nl, {.checkProtocol = false});
    s.attachTrace(&trace);
    s.run(std::stoull(t[1]));
    return trace.render();
  }
  if (verb == "timing") {
    const auto report = perf::analyzeTiming(nl);
    os << "cycle time: " << report.cycleTime << " gate units\n"
       << "critical path: " << perf::describeCriticalPath(nl, report) << "\n";
    return os.str();
  }
  if (verb == "bound") {
    const auto bound = perf::throughputBound(nl);
    os << "throughput bound: " << bound.bound
       << (bound.hasCycles ? "" : " (no token cycles)")
       << (bound.zeroLatencyCycle ? " [combinational cycle!]" : "") << "\n";
    return os.str();
  }
  if (verb == "save") {
    ESL_CHECK(t.size() == 2, "usage: save <file.esl>");
    const std::string text = frontend::printEsl(NetlistSpec::fromNetlist(nl));
    std::ofstream out(t[1]);
    ESL_CHECK(static_cast<bool>(out), "cannot write '" + t[1] + "'");
    out << text;
    ESL_CHECK(static_cast<bool>(out.flush()), "write to '" + t[1] + "' failed");
    return "saved " + std::to_string(nl.nodeIds().size()) + " nodes to '" + t[1] +
           "'\n";
  }
  if (verb == "print") return frontend::printEsl(NetlistSpec::fromNetlist(nl));
  if (verb == "area") return perf::renderAreaReport(perf::areaReport(nl));
  if (verb == "dot") return netlist::toDot(nl);
  if (verb == "verilog") return backend::emitVerilog(nl);
  if (verb == "smv") return backend::emitSmv(nl);
  if (verb == "blif") return backend::emitBlif(nl);

  throw EslError("unknown command '" + verb + "' (try `help`)");
}

}  // namespace esl::shell
