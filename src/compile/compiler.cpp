#include "compile/compiler.h"

#include <optional>
#include <typeinfo>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/params.h"
#include "elastic/shared.h"
#include "elastic/vlu.h"

namespace esl::compile {

namespace {

SlotAddr addrFor(const SignalBoard& board, ChannelId ch) {
  SlotAddr a;
  if (ch == kNoChannel) return a;
  const std::uint32_t slot = board.slotOf(ch);
  if (slot == SignalBoard::kNoSlot) return a;
  a.slot = slot;
  a.dataOff = board.dataOffAt(slot);
  a.width = board.widthAtSlot(slot);
  return a;
}

/// Exact-type kind resolution: a user *subclass* of a catalog node may
/// override evalComb/clockEdge, so only a typeid match may specialize.
OpCode classify(const Node& node, void** obj) {
  const auto& t = typeid(node);
  const auto as = [&](auto* p) {
    *obj = const_cast<void*>(static_cast<const void*>(p));
  };
  if (t == typeid(ElasticBuffer)) {
    as(static_cast<const ElasticBuffer*>(&node));
    return OpCode::kEb;
  }
  if (t == typeid(ElasticBuffer0)) {
    as(static_cast<const ElasticBuffer0*>(&node));
    return OpCode::kEb0;
  }
  if (t == typeid(BrokenBuffer)) {
    as(static_cast<const BrokenBuffer*>(&node));
    return OpCode::kBrokenEb;
  }
  if (t == typeid(ForkNode)) {
    as(static_cast<const ForkNode*>(&node));
    return OpCode::kFork;
  }
  if (t == typeid(FuncNode)) {
    as(static_cast<const FuncNode*>(&node));
    return OpCode::kFunc;
  }
  if (t == typeid(EarlyEvalMux)) {
    as(static_cast<const EarlyEvalMux*>(&node));
    return OpCode::kEeMux;
  }
  if (t == typeid(TokenSource)) {
    as(static_cast<const TokenSource*>(&node));
    return OpCode::kSource;
  }
  if (t == typeid(TokenSink)) {
    as(static_cast<const TokenSink*>(&node));
    return OpCode::kSink;
  }
  if (t == typeid(NondetSource)) {
    as(static_cast<const NondetSource*>(&node));
    return OpCode::kNondetSource;
  }
  if (t == typeid(NondetSink)) {
    as(static_cast<const NondetSink*>(&node));
    return OpCode::kNondetSink;
  }
  if (t == typeid(SharedModule)) {
    as(static_cast<const SharedModule*>(&node));
    return OpCode::kShared;
  }
  if (t == typeid(StallingVLU)) {
    as(static_cast<const StallingVLU*>(&node));
    return OpCode::kVlu;
  }
  return OpCode::kGeneric;
}

/// Attempts to lower a FuncNode's datapath to word arithmetic. Registry-built
/// nodes carry `fn=<catalog name>` in their stored build attributes; the
/// catalog factory already validated the width signature at construction, but
/// every invariant the word kernels rely on is re-checked here — any mismatch
/// (or any operand wider than a word) keeps the memoized opaque path.
FuncKind specializeFunc(const Node& node, const Op& op,
                        const std::vector<SlotAddr>& ports, std::uint64_t* fnA,
                        std::uint64_t* fnB) {
  if (!node.hasBuildParams()) return FuncKind::kOpaque;
  const Params& p = node.buildParams();
  const std::string fn = p.str("fn", "");
  if (fn.empty()) return FuncKind::kOpaque;
  const unsigned n = op.nIn;
  const SlotAddr* P = ports.data() + op.portBase;
  const unsigned outW = P[n].width;
  for (unsigned i = 0; i <= n; ++i)
    if (P[i].width > 64) return FuncKind::kOpaque;
  const auto unarySameWidth = [&] { return n == 1 && P[0].width == outW; };
  if (fn == "id" && unarySameWidth()) return FuncKind::kId;
  if (fn == "gray" && unarySameWidth()) return FuncKind::kGray;
  if (fn == "addk" && unarySameWidth() && p.has("fn.k")) {
    // Same truncation the factory applies: k is taken modulo the width.
    *fnA = outW >= 64 ? p.u64("fn.k")
                      : p.u64("fn.k") & ((std::uint64_t{1} << outW) - 1);
    return FuncKind::kAddK;
  }
  if (fn == "add" && n == 2 && P[0].width == outW && P[1].width == outW)
    return FuncKind::kAdd;
  if (fn == "xor" && n >= 1) {
    for (unsigned i = 0; i < n; ++i)
      if (P[i].width != outW) return FuncKind::kOpaque;
    return FuncKind::kXor;
  }
  if (fn == "joinmux" && n >= 3) {
    for (unsigned i = 1; i < n; ++i)
      if (P[i].width != outW) return FuncKind::kOpaque;
    return FuncKind::kJoinMux;
  }
  if (fn == "concat" && n == 2 && P[0].width + P[1].width == outW &&
      P[0].width < 64)
    return FuncKind::kConcat;
  if (fn == "permille" && n == 1 && outW == 1 && p.has("fn.permille")) {
    *fnA = p.u64("fn.permille");
    *fnB = p.u64("fn.salt", 0);
    return FuncKind::kPermille;
  }
  return FuncKind::kOpaque;
}

/// Plans the op's node-state arena record: how many u64 words it needs, with
/// the per-kind constants the VM reads every evaluation stashed in fnA/fnB
/// (one op load instead of a node-object load). Returns nullopt when the
/// state does not fit the word arena (payloads wider than 64 bits, forks
/// wider than 64 branches) — the caller downgrades to kGeneric, keeping the
/// virtual (interpreter) path, which handles arbitrary widths.
///
/// 0 words means the op is specialized but keeps its state on the node:
/// kFunc/kShared sequential "state" is a memo or a polymorphic scheduler
/// (virtual predict/observe — pointer-chasing is inherent), and kGeneric
/// state is whatever the subclass holds.
std::optional<std::uint32_t> planStateWords(Op& op,
                                            const std::vector<SlotAddr>& ports) {
  const SlotAddr* P = ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      const auto& eb = *static_cast<const ElasticBuffer*>(op.obj);
      if (P[1].width > 64) return std::nullopt;
      op.fnA = eb.capacity();
      op.fnB = eb.antiCapacity();
      // head|count, antiTokens, then one payload word per ring slot.
      return 2 + static_cast<std::uint32_t>(eb.capacity());
    }
    case OpCode::kEb0:
    case OpCode::kBrokenEb:
      // has|stopReg flags word + payload word.
      return P[1].width > 64 ? std::nullopt : std::make_optional(2u);
    case OpCode::kFork:
      // done_ bits as one mask word.
      return op.nOut > 64 ? std::nullopt : std::make_optional(1u);
    case OpCode::kEeMux:
      // One pendingAnti_ counter word per data input (payload routing goes
      // through copyData, which handles wide channels).
      return static_cast<std::uint32_t>(op.nIn - 1);
    case OpCode::kSource:
      return 2u;  // index; offering|killCredit
    case OpCode::kSink:
      return 1u;  // antiActive|antiRemaining
    case OpCode::kNondetSource: {
      const auto& ns = *static_cast<const NondetSource*>(op.obj);
      if (P[0].width > 64) return std::nullopt;
      op.fnA = ns.killCreditCap();
      op.fnB = ns.maxIdle();
      return 3u;  // offering; value; killCredit|idleStreak
    }
    case OpCode::kNondetSink: {
      const auto& nk = *static_cast<const NondetSink*>(op.obj);
      op.fnA = nk.maxConsecutiveStops();
      op.fnB = nk.emitsAntiTokens() ? 1 : 0;
      return 1u;  // antiActive|consecutiveStops
    }
    case OpCode::kVlu:
      // pending/result flags + pending word + result word.
      return P[0].width > 64 || P[1].width > 64 ? std::nullopt
                                                : std::make_optional(3u);
    case OpCode::kFunc:
    case OpCode::kShared:
    case OpCode::kGeneric:
      return 0u;
  }
  return 0u;
}

}  // namespace

Program compileProgram(Netlist& nl, const SignalBoard& board,
                       const ShardPlan* plan) {
  Program prog;
  prog.topologyVersion = nl.topologyVersion();
  prog.boardLayout = board.layoutGeneration();
  prog.opOf.assign(nl.nodeCapacity(), Program::kNoOp);
  const std::vector<NodeId> ids = nl.nodeIds();
  prog.ops.reserve(ids.size());
  const bool sharded = plan != nullptr && plan->shards > 1;
  unsigned prevShard = ~0u;
  for (const NodeId id : ids) {
    Node& node = nl.node(id);
    Op op;
    op.node = &node;
    op.nodeId = id;
    op.nIn = static_cast<std::uint16_t>(node.numInputs());
    op.nOut = static_cast<std::uint16_t>(node.numOutputs());
    op.portBase = static_cast<std::uint32_t>(prog.ports.size());
    bool allBound = true;
    bool anyBoundary = false;
    for (unsigned i = 0; i < node.numInputs(); ++i) {
      prog.ports.push_back(addrFor(board, node.input(i)));
      allBound = allBound && prog.ports.back().bound();
      anyBoundary = anyBoundary || (prog.ports.back().bound() &&
                                    board.inBoundary(prog.ports.back().slot));
    }
    for (unsigned o = 0; o < node.numOutputs(); ++o) {
      prog.ports.push_back(addrFor(board, node.output(o)));
      allBound = allBound && prog.ports.back().bound();
      anyBoundary = anyBoundary || (prog.ports.back().bound() &&
                                    board.inBoundary(prog.ports.back().slot));
    }
    // An op may only touch raw addresses when every port resolved; a node
    // caught mid-surgery (dangling port) keeps the virtual path, which throws
    // the usual accessor error if the dangling channel is actually touched.
    // Under sharding, a node adjacent to a boundary slot also stays generic:
    // boundary writes must go through the staging-aware Sig accessors.
    op.code = allBound && !(sharded && anyBoundary) ? classify(node, &op.obj)
                                                    : OpCode::kGeneric;
    if (op.code == OpCode::kFunc)
      op.fnKind = specializeFunc(node, op, prog.ports, &op.fnA, &op.fnB);
    const std::optional<std::uint32_t> words = planStateWords(op, prog.ports);
    if (!words) {
      // State too wide for the word arena: virtual path handles any width.
      op.code = OpCode::kGeneric;
      op.obj = nullptr;
      op.fnA = op.fnB = 0;
    } else if (*words > 0) {
      if (sharded) {
        // Cache-line-align each shard's first record so concurrent shard
        // workers never false-share a state record across the slice border.
        const unsigned s = plan->nodeShard[id];
        if (s != prevShard) prog.stateWords = (prog.stateWords + 7) & ~7u;
        prevShard = s;
      }
      op.stateOff = prog.stateWords;
      prog.stateWords += *words;
    }
    prog.opOf[id] = static_cast<std::uint32_t>(prog.ops.size());
    prog.ops.push_back(op);
  }
  return prog;
}

}  // namespace esl::compile
