#include "compile/vm.h"

#include "base/executor.h"
#include "base/rng.h"
#include "elastic/buffer.h"
#include "elastic/context.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/shared.h"
#include "elastic/vlu.h"

namespace esl::compile {

namespace {
constexpr unsigned kVf = SignalBoard::kVf;
constexpr unsigned kSf = SignalBoard::kSf;
constexpr unsigned kVb = SignalBoard::kVb;
constexpr unsigned kSb = SignalBoard::kSb;

std::uint32_t lo32(std::uint64_t v) { return static_cast<std::uint32_t>(v); }
std::uint32_t hi32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 32);
}
std::uint64_t pack32(std::uint32_t lo, std::uint32_t hi) {
  return static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
}

/// Node payload -> arena word. The compiler only assigns a state record when
/// every payload the record must carry fits one word, so a width mismatch
/// here means the node holds a token that disagrees with its channel width —
/// unrepresentable in the arena (and unreachable through pushes from the
/// bound channel or unpackState of a matching netlist).
std::uint64_t packWord(const BitVec& v, std::uint32_t width) {
  ESL_CHECK(v.width() == width,
            "state arena: stored payload width disagrees with the channel");
  return width == 0 ? 0 : v.word0();
}

/// Arena word -> optional node payload (flush side of kEb0/kBrokenEb/kVlu).
void storeOpt(std::optional<BitVec>& dst, bool has, std::uint32_t width,
              std::uint64_t word) {
  if (!has) {
    dst.reset();
  } else if (width == 0) {
    if (!dst || dst->width() != 0) dst = BitVec(0);
  } else if (dst && dst->width() == width) {
    dst->assignNarrow(width, word);  // reuse the slot's storage
  } else {
    dst = BitVec(width, word);
  }
}
}  // namespace

// --- lifecycle ---------------------------------------------------------------

void Vm::ensureProgram() {
  // A program is valid for one (topologyVersion, board layoutGeneration)
  // pair: topology moves on splices/transformations, the layout moves on
  // every board re-layout — including shard-count changes, which permute
  // slots WITHOUT a topology bump. Reusing a program across either would
  // store through stale raw offsets.
  if (hasProgram_ && prog_.topologyVersion == ctx_.netlist_.topologyVersion() &&
      prog_.boardLayout == ctx_.board_.layoutGeneration())
    return;
  // The old arena may be the authoritative copy of node state: publish it
  // through the OLD offsets into every node that survived the change before
  // the offsets are recomputed.
  flushState();
  prog_ = compileProgram(ctx_.netlist_, ctx_.board_,
                         ctx_.shards_ > 1 ? &ctx_.plan_ : nullptr);
  hasProgram_ = true;
  state_.assign(prog_.stateWords, 0);
}

void Vm::bind() {
  SignalBoard& b = ctx_.board_;
  ctrl_ = b.ctrlData();
  words_ = b.payloadData();
  spill_ = b.spillData();
  changed_ = b.changedData();
}

void Vm::settle() {
  ctx_.ensureTopologyCache();  // board layout current before addressing it
  ensureProgram();
  bind();
  adoptArena();
  if (ctx_.shards_ > 1)
    ctx_.settleShardedWith([this](NodeId id) { evalNode(id); });
  else
    ctx_.settleEventDrivenWith([this](NodeId id) { evalNode(id); });
}

void Vm::edge() {
  ctx_.ensureTopologyCache();
  ensureProgram();
  bind();
  adoptArena();
  if (ctx_.shards_ > 1)
    ctx_.edgeShardedWith([this](NodeId id) { edgeNode(id, true); });
  else
    ctx_.edgeSparseWith([this](NodeId id) { edgeNode(id, true); });
}

void Vm::prepare() {
  ctx_.ensureTopologyCache();
  ensureProgram();
  bind();
}

bool Vm::hasSpecializedOpFor(NodeId id) const {
  if (!hasProgram_ || id >= prog_.opOf.size()) return false;
  const std::uint32_t idx = prog_.opOf[id];
  return idx != Program::kNoOp && prog_.ops[idx].code != OpCode::kGeneric;
}

void Vm::edgeNodeForAudit(NodeId id) {
  const Op& op = prog_.ops[prog_.opOf[id]];
  // The audit just rewound the node OBJECT, so re-adopt it, replay the op
  // against the arena, and flush so packState() sees the compiled result.
  // The global arena validity is untouched: the audit edge runs interpreted
  // around these replays, so the node objects stay authoritative throughout.
  if (op.stateOff != Op::kNoState) adoptOp(op);
  edgeNode(id, false);
  if (op.stateOff != Op::kNoState) flushOp(op);
}

// --- node-state arena adoption/flush -----------------------------------------

void Vm::adoptArena() {
  if (arenaValid_) return;
  for (const Op& op : prog_.ops)
    if (op.stateOff != Op::kNoState) adoptOp(op);
  arenaValid_ = true;
}

void Vm::flushState() {
  if (!arenaValid_) return;
  arenaValid_ = false;
  for (const Op& op : prog_.ops) {
    if (op.stateOff == Op::kNoState) continue;
    // NodeIds are never recycled, so liveness is airtight: a node removed by
    // surgery since the compile simply drops its (now unowned) state.
    if (!ctx_.netlist_.hasNode(op.nodeId)) continue;
    flushOp(op);
  }
}

void Vm::adoptOp(const Op& op) {
  std::uint64_t* S = &state_[op.stateOff];
  const SlotAddr* P = prog_.ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      const auto& eb = *static_cast<const ElasticBuffer*>(op.obj);
      S[0] = pack32(eb.head_, eb.count_);
      S[1] = static_cast<std::uint64_t>(static_cast<std::int64_t>(eb.antiTokens_));
      for (unsigned i = 0; i < eb.count_; ++i) {
        unsigned idx = eb.head_ + i;
        if (idx >= eb.capacity_) idx -= eb.capacity_;
        S[2 + idx] = packWord(eb.ring_[idx], P[1].width);
      }
      break;
    }
    case OpCode::kEb0: {
      const auto& eb = *static_cast<const ElasticBuffer0*>(op.obj);
      S[0] = eb.slot_.has_value() ? 1 : 0;
      S[1] = eb.slot_ ? packWord(*eb.slot_, P[1].width) : 0;
      break;
    }
    case OpCode::kBrokenEb: {
      const auto& bb = *static_cast<const BrokenBuffer*>(op.obj);
      S[0] = (bb.slot_.has_value() ? 1u : 0u) | (bb.stopReg_ ? 2u : 0u);
      S[1] = bb.slot_ ? packWord(*bb.slot_, P[1].width) : 0;
      break;
    }
    case OpCode::kFork: {
      const auto& fk = *static_cast<const ForkNode*>(op.obj);
      std::uint64_t mask = 0;
      for (unsigned i = 0; i < op.nOut; ++i)
        if (fk.done_[i]) mask |= std::uint64_t{1} << i;
      S[0] = mask;
      break;
    }
    case OpCode::kEeMux: {
      const auto& mx = *static_cast<const EarlyEvalMux*>(op.obj);
      for (unsigned i = 0; i + 1 < op.nIn; ++i) S[i] = mx.pendingAnti_[i];
      break;
    }
    case OpCode::kSource: {
      const auto& src = *static_cast<const TokenSource*>(op.obj);
      S[0] = src.index_;
      S[1] = pack32(src.offering_ ? 1 : 0, src.killCredit_);
      break;
    }
    case OpCode::kSink: {
      const auto& sk = *static_cast<const TokenSink*>(op.obj);
      S[0] = pack32(sk.antiActive_ ? 1 : 0, sk.antiRemaining_);
      break;
    }
    case OpCode::kNondetSource: {
      const auto& ns = *static_cast<const NondetSource*>(op.obj);
      S[0] = ns.offering_ ? 1 : 0;
      S[1] = packWord(ns.value_, P[0].width);
      S[2] = pack32(ns.killCredit_, ns.idleStreak_);
      break;
    }
    case OpCode::kNondetSink: {
      const auto& nk = *static_cast<const NondetSink*>(op.obj);
      S[0] = pack32(nk.antiActive_ ? 1 : 0, nk.consecutiveStops_);
      break;
    }
    case OpCode::kVlu: {
      const auto& vu = *static_cast<const StallingVLU*>(op.obj);
      S[0] = (vu.pending_.has_value() ? 1u : 0u) |
             (vu.result_.has_value() ? 2u : 0u);
      S[1] = vu.pending_ ? packWord(*vu.pending_, P[0].width) : 0;
      S[2] = vu.result_ ? packWord(*vu.result_, P[1].width) : 0;
      break;
    }
    default:
      break;
  }
}

void Vm::flushOp(const Op& op) {
  const std::uint64_t* S = &state_[op.stateOff];
  const SlotAddr* P = prog_.ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      auto& eb = *static_cast<ElasticBuffer*>(op.obj);
      eb.head_ = lo32(S[0]);
      eb.count_ = hi32(S[0]);
      eb.antiTokens_ = static_cast<int>(static_cast<std::int64_t>(S[1]));
      if (P[1].width > 0)
        for (unsigned i = 0; i < eb.count_; ++i) {
          unsigned idx = eb.head_ + i;
          if (idx >= eb.capacity_) idx -= eb.capacity_;
          eb.ring_[idx].assignNarrow(P[1].width, S[2 + idx]);
        }
      break;
    }
    case OpCode::kEb0: {
      auto& eb = *static_cast<ElasticBuffer0*>(op.obj);
      storeOpt(eb.slot_, (S[0] & 1) != 0, P[1].width, S[1]);
      break;
    }
    case OpCode::kBrokenEb: {
      auto& bb = *static_cast<BrokenBuffer*>(op.obj);
      storeOpt(bb.slot_, (S[0] & 1) != 0, P[1].width, S[1]);
      bb.stopReg_ = (S[0] & 2) != 0;
      break;
    }
    case OpCode::kFork: {
      auto& fk = *static_cast<ForkNode*>(op.obj);
      for (unsigned i = 0; i < op.nOut; ++i)
        fk.done_[i] = (S[0] >> i) & 1;
      break;
    }
    case OpCode::kEeMux: {
      auto& mx = *static_cast<EarlyEvalMux*>(op.obj);
      for (unsigned i = 0; i + 1 < op.nIn; ++i)
        mx.pendingAnti_[i] = static_cast<unsigned>(S[i]);
      break;
    }
    case OpCode::kSource: {
      auto& src = *static_cast<TokenSource*>(op.obj);
      src.index_ = S[0];
      src.offering_ = (S[1] & 1) != 0;
      src.killCredit_ = hi32(S[1]);
      break;
    }
    case OpCode::kSink: {
      auto& sk = *static_cast<TokenSink*>(op.obj);
      sk.antiActive_ = (S[0] & 1) != 0;
      sk.antiRemaining_ = hi32(S[0]);
      break;
    }
    case OpCode::kNondetSource: {
      auto& ns = *static_cast<NondetSource*>(op.obj);
      ns.offering_ = S[0] != 0;
      if (P[0].width > 0)
        ns.value_.assignNarrow(P[0].width, S[1]);
      else if (ns.value_.width() != 0)
        ns.value_ = BitVec(0);
      ns.killCredit_ = lo32(S[2]);
      ns.idleStreak_ = hi32(S[2]);
      break;
    }
    case OpCode::kNondetSink: {
      auto& nk = *static_cast<NondetSink*>(op.obj);
      nk.antiActive_ = (S[0] & 1) != 0;
      nk.consecutiveStops_ = hi32(S[0]);
      break;
    }
    case OpCode::kVlu: {
      auto& vu = *static_cast<StallingVLU*>(op.obj);
      storeOpt(vu.pending_, (S[0] & 1) != 0, P[0].width, S[1]);
      storeOpt(vu.result_, (S[0] & 2) != 0, P[1].width, S[2]);
      break;
    }
    default:
      break;
  }
}

// --- raw payload access (mirrors SignalBoard::setDataAt and friends) ---------

BitVec Vm::rdData(const SlotAddr& a) const {
  if (a.dataOff == SignalBoard::kNoSlot) return BitVec(a.width);
  if (a.dataOff & SignalBoard::kWideFlag)
    return spill_[a.dataOff & ~SignalBoard::kWideFlag];
  return BitVec(a.width, words_[a.dataOff]);
}

std::uint64_t Vm::rdLow64(const SlotAddr& a) const {
  if (a.dataOff == SignalBoard::kNoSlot) return 0;
  if (a.dataOff & SignalBoard::kWideFlag)
    return spill_[a.dataOff & ~SignalBoard::kWideFlag].toUint64();
  return words_[a.dataOff];
}

bool Vm::dataEqualsValue(const SlotAddr& a, const BitVec& v) const {
  if (v.width() != a.width) return false;
  if (a.dataOff == SignalBoard::kNoSlot) return true;
  if (a.dataOff & SignalBoard::kWideFlag)
    return spill_[a.dataOff & ~SignalBoard::kWideFlag] == v;
  return words_[a.dataOff] == v.toUint64();
}

void Vm::wrData(const SlotAddr& a, const BitVec& v) {
  ESL_CHECK(v.width() == a.width, "SignalBoard: payload width mismatch");
  if (a.dataOff == SignalBoard::kNoSlot) return;  // zero-width control token
  if (a.dataOff & SignalBoard::kWideFlag) {
    BitVec& dst = spill_[a.dataOff & ~SignalBoard::kWideFlag];
    if (dst == v) return;
    dst = v;
  } else {
    std::uint64_t& w = words_[a.dataOff];
    const std::uint64_t nv = v.toUint64();
    if (w == nv) return;
    w = nv;
  }
  changed_[a.chWord()] |= a.bitMask();
}

void Vm::copyData(const SlotAddr& dst, const SlotAddr& src) {
  // Same-width routing copy (fork branches, mux selection); widths are equal
  // by construction, audited when the channels were bound.
  if (dst.dataOff == SignalBoard::kNoSlot) return;
  if (dst.dataOff & SignalBoard::kWideFlag) {
    BitVec& out = spill_[dst.dataOff & ~SignalBoard::kWideFlag];
    const BitVec& in = spill_[src.dataOff & ~SignalBoard::kWideFlag];
    if (out == in) return;
    out = in;
  } else {
    std::uint64_t& out = words_[dst.dataOff];
    if (out == words_[src.dataOff]) return;
    out = words_[src.dataOff];
  }
  changed_[dst.chWord()] |= dst.bitMask();
}

std::uint64_t Vm::funcWord(const Op& op, const SlotAddr* P) const {
  const unsigned outW = P[op.nIn].width;
  const auto mask = [outW](std::uint64_t v) {
    return outW >= 64 ? v : v & ((std::uint64_t{1} << outW) - 1);
  };
  switch (op.fnKind) {
    case FuncKind::kId:
      return rdLow64(P[0]);
    case FuncKind::kAddK:
      return mask(rdLow64(P[0]) + op.fnA);
    case FuncKind::kAdd:
      return mask(rdLow64(P[0]) + rdLow64(P[1]));
    case FuncKind::kXor: {
      std::uint64_t acc = rdLow64(P[0]);
      for (unsigned i = 1; i < op.nIn; ++i) acc ^= rdLow64(P[i]);
      return acc;
    }
    case FuncKind::kGray: {
      const std::uint64_t x = rdLow64(P[0]);
      return x ^ (x >> 1);
    }
    case FuncKind::kJoinMux: {
      const std::uint64_t sel = rdLow64(P[0]);
      ESL_CHECK(sel < op.nIn - 1u, "join mux: select out of range");
      return rdLow64(P[1 + sel]);
    }
    case FuncKind::kConcat:
      return rdLow64(P[0]) | rdLow64(P[1]) << P[0].width;
    case FuncKind::kPermille:
      return hashChancePermille(rdLow64(P[0]),
                                static_cast<unsigned>(op.fnA), op.fnB)
                 ? 1
                 : 0;
    case FuncKind::kOpaque:
      break;
  }
  return 0;
}

bool Vm::fwdAt(const SlotAddr& a) const {
  return rdBit(a, kVf) && !rdBit(a, kSf) && !rdBit(a, kVb);
}

bool Vm::killAt(const SlotAddr& a) const {
  return rdBit(a, kVf) && rdBit(a, kVb);
}

bool Vm::bwdAt(const SlotAddr& a) const {
  return rdBit(a, kVb) && !rdBit(a, kSb) && !rdBit(a, kVf);
}

// --- combinational ops -------------------------------------------------------
// Each case is a line-for-line transcription of the node's evalComb against
// raw addresses and the node's arena record (S). The order and values of
// every signal write match the interpreted node exactly, so both backends
// settle to the same fixpoint through the shared worklist loop.

void Vm::evalNode(NodeId id) {
  const Op& op = prog_.ops[prog_.opOf[id]];
  const SlotAddr* P = prog_.ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const std::uint32_t count = hi32(S[0]);
      const std::int64_t anti = static_cast<std::int64_t>(S[1]);
      const bool hasTok = count > 0;
      wrBit(out, kVf, hasTok);
      if (hasTok) wrWord(out, S[2 + lo32(S[0])]);  // front = ring[head]
      wrBit(out, kSb, !hasTok && anti >= static_cast<std::int64_t>(op.fnB));
      wrBit(in, kSf,
            static_cast<std::int64_t>(count) - anti >=
                static_cast<std::int64_t>(op.fnA));
      wrBit(in, kVb, anti > 0);
      break;
    }
    case OpCode::kEb0: {
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const bool full = (S[0] & 1) != 0;
      wrBit(out, kVf, full);
      if (full) wrWord(out, S[1]);
      const bool leave = full && (!rdBit(out, kSf) || rdBit(out, kVb));
      wrBit(in, kSf, full && !leave);
      wrBit(in, kVb, !full && rdBit(out, kVb));
      wrBit(out, kSb, !full && !rdBit(in, kVf) && rdBit(in, kSb));
      break;
    }
    case OpCode::kBrokenEb: {
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const bool full = (S[0] & 1) != 0;
      wrBit(out, kVf, full);
      if (full) wrWord(out, S[1]);
      wrBit(out, kSb, true);
      wrBit(in, kSf, (S[0] & 2) != 0);
      wrBit(in, kVb, false);
      break;
    }
    case OpCode::kFork: {
      const std::uint64_t done = state_[op.stateOff];
      const SlotAddr& in = P[0];
      const unsigned n = op.nOut;
      const bool inVf = rdBit(in, kVf);
      for (unsigned i = 0; i < n; ++i) {
        const SlotAddr& br = P[1 + i];
        const bool pending = inVf && !((done >> i) & 1);
        wrBit(br, kVf, pending);
        if (pending) copyData(br, in);
        wrBit(br, kSb, !pending);
      }
      bool allDone = inVf;
      for (unsigned i = 0; i < n && allDone; ++i) {
        const SlotAddr& br = P[1 + i];
        allDone =
            ((done >> i) & 1) || (inVf && (rdBit(br, kVb) || !rdBit(br, kSf)));
      }
      wrBit(in, kSf, !allDone);
      wrBit(in, kVb, false);
      break;
    }
    case OpCode::kFunc: {
      auto& fn = *static_cast<FuncNode*>(op.obj);
      const unsigned n = op.nIn;
      const SlotAddr& out = P[n];
      bool allIn = true;
      for (unsigned i = 0; i < n; ++i) allIn = allIn && rdBit(P[i], kVf);
      wrBit(out, kVf, allIn);
      if (allIn) {
        if (op.fnKind != FuncKind::kOpaque) {
          // Word-specialized datapath: fn_ is pure, so skipping its memo is
          // unobservable (the memo is a cache, never serialized).
          wrWord(out, funcWord(op, P));
        } else {
          bool hit = fn.memoValid_;
          for (unsigned i = 0; hit && i < n; ++i)
            hit = dataEqualsValue(P[i], fn.memoArgs_[i]);
          if (!hit) {
            fn.memoArgs_.resize(n);
            for (unsigned i = 0; i < n; ++i) fn.memoArgs_[i] = rdData(P[i]);
            fn.memoOut_ = fn.fn_(fn.memoArgs_);
            ESL_CHECK(fn.memoOut_.width() == fn.outputWidth(0),
                      "FuncNode '" + fn.name() +
                          "': function returned wrong width");
            fn.memoValid_ = true;
          }
          wrData(out, fn.memoOut_);
        }
      }
      const bool outVb = rdBit(out, kVb);
      const bool fire = allIn && (!rdBit(out, kSf) || outVb);
      bool allCan = true;
      for (unsigned i = 0; i < n; ++i)
        allCan = allCan && (rdBit(P[i], kVf) || !rdBit(P[i], kSb));
      const bool back = outVb && !allIn && allCan;
      for (unsigned i = 0; i < n; ++i) {
        wrBit(P[i], kVb, back);
        wrBit(P[i], kSf, !fire && !back);
      }
      wrBit(out, kSb, !allIn && !allCan);
      break;
    }
    case OpCode::kEeMux: {
      const std::uint64_t* S = &state_[op.stateOff];
      const unsigned k = op.nIn - 1u;
      const SlotAddr& sel = P[0];
      const SlotAddr& out = P[1 + k];
      const bool selValid = rdBit(sel, kVf);
      unsigned selIdx = 0;
      if (selValid) {
        const std::uint64_t idx = rdLow64(sel);
        ESL_CHECK(idx < k, "EarlyEvalMux '" + op.node->name() +
                               "': select value out of range");
        selIdx = static_cast<unsigned>(idx);
      }
      const bool usable =
          selValid && S[selIdx] == 0 && rdBit(P[1 + selIdx], kVf);
      const bool fire = usable && (!rdBit(out, kSf) || rdBit(out, kVb));
      wrBit(out, kVf, usable);
      if (usable) copyData(out, P[1 + selIdx]);
      wrBit(out, kSb, !usable);
      wrBit(sel, kSf, !fire);
      wrBit(sel, kVb, false);
      for (unsigned i = 0; i < k; ++i) {
        const SlotAddr& in = P[1 + i];
        const bool anti = S[i] + ((fire && i != selIdx) ? 1u : 0u) > 0;
        wrBit(in, kVb, anti);
        if (anti)
          wrBit(in, kSf, false);  // kill and stop are mutually exclusive
        else if (selValid && i == selIdx)
          wrBit(in, kSf, !fire);
        else
          wrBit(in, kSf, rdBit(in, kVf));
      }
      break;
    }
    case OpCode::kSource: {
      auto& src = *static_cast<TokenSource*>(op.obj);
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& out = P[0];
      const std::optional<BitVec> tok =
          (S[1] & 1) ? src.tokenAt(S[0]) : std::nullopt;
      const bool offer = tok.has_value() && hi32(S[1]) == 0;
      wrBit(out, kVf, offer);
      if (offer) wrData(out, *tok);
      wrBit(out, kSb, false);  // sources always absorb anti-tokens
      break;
    }
    case OpCode::kSink: {
      auto& sk = *static_cast<TokenSink*>(op.obj);
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const bool wantAnti =
          (S[0] & 1) ||
          (hi32(S[0]) > 0 && sk.antiGate_ && sk.antiGate_(ctx_.cycle()));
      wrBit(in, kVb, wantAnti);
      wrBit(in, kSf, !wantAnti && sk.ready_ && !sk.ready_(ctx_.cycle()));
      break;
    }
    case OpCode::kNondetSource: {
      const auto& ns = *static_cast<const NondetSource*>(op.obj);
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& out = P[0];
      const bool held = S[0] != 0;  // Retry+ persistence
      const bool offeringNow =
          held || ctx_.choice(*op.node, 0) || hi32(S[2]) >= op.fnB;
      const bool offer = offeringNow && lo32(S[2]) == 0;
      wrBit(out, kVf, offer);
      if (offer) {
        std::uint64_t v = S[1];
        if (!held) {
          v = 0;
          for (unsigned b = 0; b < ns.dataBits_; ++b)
            if (ctx_.choice(*op.node, 1 + b)) v |= std::uint64_t{1} << b;
        }
        wrWord(out, v);
      }
      wrBit(out, kSb, !offer && lo32(S[2]) >= op.fnA);
      break;
    }
    case OpCode::kNondetSink: {
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const bool anti = (S[0] & 1) || (op.fnB != 0 && ctx_.choice(*op.node, 1));
      wrBit(in, kVb, anti);
      wrBit(in, kSf,
            !anti && hi32(S[0]) < op.fnA && ctx_.choice(*op.node, 0));
      break;
    }
    case OpCode::kShared: {
      auto& sm = *static_cast<SharedModule*>(op.obj);
      const unsigned k = sm.channels_;
      sm.validScratch_.resize(k);
      for (unsigned i = 0; i < k; ++i) sm.validScratch_[i] = rdBit(P[i], kVf);
      const sched::ChoiceReader reader = [this, &sm](unsigned b) {
        return ctx_.choice(sm, b);
      };
      const unsigned sched = sm.scheduler_->predict(sm.validScratch_, reader);
      ESL_CHECK(sched < k, "SharedModule: scheduler predicted out of range");
      sm.lastPrediction_ = sched;
      for (unsigned i = 0; i < k; ++i) {
        const SlotAddr& in = P[i];
        const SlotAddr& out = P[k + i];
        const bool routed = i == sched;
        const bool inVf = rdBit(in, kVf);
        const bool outVf = routed && inVf;
        wrBit(out, kVf, outVf);
        if (outVf) {
          if (!sm.memoValid_ || !dataEqualsValue(in, sm.memoIn_)) {
            sm.memoIn_ = rdData(in);
            sm.memoOut_ = sm.fn_(sm.memoIn_);
            ESL_CHECK(sm.memoOut_.width() == sm.outWidth_,
                      "SharedModule '" + sm.name() +
                          "': function returned wrong width");
            sm.memoValid_ = true;
          }
          wrData(out, sm.memoOut_);
        }
        const bool anti = rdBit(out, kVb);
        wrBit(in, kVb, anti);
        wrBit(out, kSb, !inVf && rdBit(in, kSb));
        wrBit(in, kSf, !anti && (routed ? rdBit(out, kSf) : true));
      }
      break;
    }
    case OpCode::kVlu: {
      const std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const bool haveResult = (S[0] & 2) != 0;
      wrBit(out, kVf, haveResult);
      if (haveResult) wrWord(out, S[2]);
      wrBit(out, kSb, !haveResult);
      const bool leave = haveResult && (!rdBit(out, kSf) || rdBit(out, kVb));
      const bool canAccept = !(S[0] & 1) && (!haveResult || leave);
      wrBit(in, kSf, !canAccept);
      wrBit(in, kVb, false);
      break;
    }
    case OpCode::kGeneric:
      op.node->evalComb(ctx_);
      break;
  }
}

// --- clock-edge ops ----------------------------------------------------------
// Transcriptions of each node's clockEdge against the arena records.
// `applyStats == false` (the edge audit's replay) suppresses only the
// statistics that packState() excludes — serialized state always advances, so
// replaying an edge from a rewound snapshot lands on the same bytes.

void Vm::edgeNode(NodeId id, bool applyStats) {
  const Op& op = prog_.ops[prog_.opOf[id]];
  const SlotAddr* P = prog_.ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      std::uint64_t* S = &state_[op.stateOff];
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      const std::uint32_t cap = static_cast<std::uint32_t>(op.fnA);
      std::uint32_t head = lo32(S[0]);
      std::uint32_t count = hi32(S[0]);
      std::int64_t anti = static_cast<std::int64_t>(S[1]);
      if (out.kill || out.fwd) {
        ESL_ASSERT(count > 0);
        head = head + 1 == cap ? 0 : head + 1;
        --count;
      } else if (out.bwd) {
        ESL_ASSERT(count == 0);
        ++anti;
      }
      if (in.kill) {
        ESL_ASSERT(anti > 0);
        --anti;
      } else if (in.fwd) {
        std::uint32_t tail = head + count;
        if (tail >= cap) tail -= cap;
        S[2 + tail] = rdLow64(P[0]);
        ++count;
        ESL_ASSERT(count <= cap);
      } else if (in.bwd) {
        ESL_ASSERT(anti > 0);
        --anti;
      }
      while (count > 0 && anti > 0) {
        head = head + 1 == cap ? 0 : head + 1;
        --count;
        --anti;
      }
      ESL_ASSERT(count == 0 || anti == 0);
      S[0] = pack32(head, count);
      S[1] = static_cast<std::uint64_t>(anti);
      break;
    }
    case OpCode::kEb0: {
      std::uint64_t* S = &state_[op.stateOff];
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      bool has = (S[0] & 1) != 0;
      if (out.kill || out.fwd) has = false;
      if (in.fwd) {
        ESL_ASSERT(!has);
        has = true;
        S[1] = rdLow64(P[0]);
      }
      S[0] = has ? 1 : 0;
      break;
    }
    case OpCode::kBrokenEb: {
      std::uint64_t* S = &state_[op.stateOff];
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      bool has = (S[0] & 1) != 0;
      const bool stopReg = has;  // the bug: stop lags the state by a cycle
      if (out.fwd) has = false;
      if (in.fwd) {  // may overwrite a live token
        has = true;
        S[1] = rdLow64(P[0]);
      }
      S[0] = (has ? 1u : 0u) | (stopReg ? 2u : 0u);
      break;
    }
    case OpCode::kFork: {
      std::uint64_t* S = &state_[op.stateOff];
      const SlotAddr& in = P[0];
      const unsigned n = op.nOut;
      if (!rdBit(in, kVf)) break;
      std::uint64_t next = 0;
      bool all = true;
      for (unsigned i = 0; i < n; ++i) {
        const SlotAddr& br = P[1 + i];
        const bool d =
            ((S[0] >> i) & 1) || rdBit(br, kVb) || !rdBit(br, kSf);
        if (d) next |= std::uint64_t{1} << i;
        all = all && d;
      }
      S[0] = all ? 0 : next;
      break;
    }
    case OpCode::kFunc: {
      auto& fn = *static_cast<FuncNode*>(op.obj);
      if (fwdAt(P[op.nIn]) && applyStats) ++fn.firings_;
      break;
    }
    case OpCode::kEeMux: {
      auto& mx = *static_cast<EarlyEvalMux*>(op.obj);
      std::uint64_t* S = &state_[op.stateOff];
      const unsigned k = op.nIn - 1u;
      const SlotAddr& sel = P[0];
      const SlotAddr& out = P[1 + k];
      const bool selValid = rdBit(sel, kVf);
      unsigned selIdx = 0;
      if (selValid) {
        const std::uint64_t idx = rdLow64(sel);
        ESL_CHECK(idx < k, "EarlyEvalMux '" + op.node->name() +
                               "': select value out of range");
        selIdx = static_cast<unsigned>(idx);
      }
      const bool usable =
          selValid && S[selIdx] == 0 && rdBit(P[1 + selIdx], kVf);
      const bool fire = usable && (!rdBit(out, kSf) || rdBit(out, kVb));
      for (unsigned i = 0; i < k; ++i) {
        const Ev in = evAt(P[1 + i]);
        std::uint64_t avail = S[i] + ((fire && i != selIdx) ? 1u : 0u);
        if (in.vb && (in.vf || !in.sb)) {
          ESL_ASSERT(avail > 0);
          --avail;  // delivered: killed a token or moved upstream
        }
        if (fire && i != selIdx && applyStats) ++mx.antiEmitted_;
        S[i] = avail;
      }
      if (fwdAt(out) && applyStats) ++mx.firings_;
      break;
    }
    case OpCode::kSource: {
      auto& src = *static_cast<TokenSource*>(op.obj);
      std::uint64_t* S = &state_[op.stateOff];
      const Ev out = evAt(P[0]);
      std::uint64_t index = S[0];
      bool offering = (S[1] & 1) != 0;
      std::uint32_t killCredit = hi32(S[1]);
      if (out.kill) {
        ++index;
        if (applyStats) ++src.killedCount_;
        offering = false;
      } else if (out.fwd) {
        ++index;
        if (applyStats) ++src.emitted_;
        offering = false;
      } else if (out.bwd) {
        ++killCredit;
      }
      // An owed kill silently consumes the next available token (one per
      // cycle).
      if (killCredit > 0 && src.tokenAt(index).has_value() && !out.vf) {
        ++index;
        --killCredit;
        if (applyStats) ++src.killedCount_;
        offering = false;
      }
      // Offer the next token when the gate opens for the upcoming cycle.
      if (!offering && (!src.gate_ || src.gate_(ctx_.cycle() + 1)) &&
          src.tokenAt(index).has_value() && killCredit == 0)
        offering = true;
      S[0] = index;
      S[1] = pack32(offering ? 1 : 0, killCredit);
      break;
    }
    case OpCode::kSink: {
      auto& sk = *static_cast<TokenSink*>(op.obj);
      std::uint64_t* S = &state_[op.stateOff];
      const Ev in = evAt(P[0]);
      if (in.fwd && applyStats)
        sk.transfers_.push_back({ctx_.cycle(), rdData(P[0])});
      if (in.vb) {
        bool antiActive = (S[0] & 1) != 0;
        std::uint32_t remaining = hi32(S[0]);
        const bool delivered = in.vf || !in.sb;
        if (delivered) {
          ESL_ASSERT(remaining > 0);
          --remaining;
          antiActive = false;
        } else {
          antiActive = true;  // Retry-: persist until delivered
        }
        S[0] = pack32(antiActive ? 1 : 0, remaining);
      }
      break;
    }
    case OpCode::kNondetSource: {
      const auto& ns = *static_cast<const NondetSource*>(op.obj);
      std::uint64_t* S = &state_[op.stateOff];
      const Ev out = evAt(P[0]);
      const bool held = S[0] != 0;
      std::uint32_t killCredit = lo32(S[2]);
      std::uint32_t idleStreak = hi32(S[2]);
      bool offered =
          held || ctx_.choice(*op.node, 0) || idleStreak >= op.fnB;
      std::uint64_t v = S[1];  // Retry+ persistence: value fixed while held
      if (!held) {
        v = 0;
        for (unsigned b = 0; b < ns.dataBits_; ++b)
          if (ctx_.choice(*op.node, 1 + b)) v |= std::uint64_t{1} << b;
      }
      if (out.kill || out.fwd) offered = false;
      if (out.bwd) ++killCredit;
      // An owed kill annihilates the (hidden) offered token.
      if (offered && killCredit > 0) {
        offered = false;
        --killCredit;
      }
      S[0] = offered ? 1 : 0;
      S[1] = offered ? v : 0;
      // Bounded fairness: count consecutive cycles without an offer. Must
      // re-query the offer decision AFTER the offering update, like the node.
      if (offered || ctx_.choice(*op.node, 0) || idleStreak >= op.fnB)
        idleStreak = 0;
      else if (idleStreak < op.fnB)
        ++idleStreak;
      S[2] = pack32(killCredit, idleStreak);
      break;
    }
    case OpCode::kNondetSink: {
      std::uint64_t* S = &state_[op.stateOff];
      const Ev in = evAt(P[0]);
      std::uint32_t stops = in.sf ? hi32(S[0]) + 1 : 0;
      if (stops > op.fnA) stops = static_cast<std::uint32_t>(op.fnA);
      bool antiActive = (S[0] & 1) != 0;
      if (in.vb) antiActive = !(in.vf || !in.sb);
      S[0] = pack32(antiActive ? 1 : 0, stops);
      break;
    }
    case OpCode::kShared: {
      auto& sm = *static_cast<SharedModule*>(op.obj);
      const unsigned k = sm.channels_;
      // lastPrediction_ is the settled prediction (evalComb ran on the
      // settled signals); predict() is pure, no need to recompute it.
      sched::Observation& obs = sm.obsScratch_;
      obs.predicted = sm.lastPrediction_;
      obs.valid.resize(k);
      obs.demand.resize(k);
      obs.served.resize(k);
      obs.killed.resize(k);
      bool anyDemand = false;
      for (unsigned i = 0; i < k; ++i) {
        const Ev in = evAt(P[i]);
        const Ev out = evAt(P[k + i]);
        obs.valid[i] = in.vf;
        obs.demand[i] = out.sf && !out.vf;
        obs.served[i] = out.fwd;
        obs.killed[i] = in.kill;
        if (obs.served[i] && applyStats) ++sm.served_[i];
        anyDemand = anyDemand || obs.demand[i];
      }
      if (anyDemand && applyStats) ++sm.demandCycles_;
      sm.scheduler_->observe(obs);
      break;
    }
    case OpCode::kVlu: {
      auto& vu = *static_cast<StallingVLU*>(op.obj);
      std::uint64_t* S = &state_[op.stateOff];
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      bool hasPending = (S[0] & 1) != 0;
      bool hasResult = (S[0] & 2) != 0;
      if (out.kill || out.fwd) {
        if (out.fwd && applyStats) ++vu.completed_;
        hasResult = false;
      }
      if (hasPending) {
        ESL_ASSERT(!hasResult);
        S[2] = packWord(vu.exact_(BitVec(P[0].width, S[1])), P[1].width);
        hasResult = true;
        hasPending = false;
      } else if (in.fwd) {
        const BitVec x = rdData(P[0]);
        if (vu.err_(x)) {
          S[1] = rdLow64(P[0]);  // bubble next cycle, sender stalled
          hasPending = true;
          if (applyStats) ++vu.stalls_;
        } else {
          // approx == exact when no error flagged
          S[2] = packWord(vu.exact_(x), P[1].width);
          hasResult = true;
        }
      }
      S[0] = (hasPending ? 1u : 0u) | (hasResult ? 2u : 0u);
      break;
    }
    case OpCode::kGeneric:
      op.node->clockEdge(ctx_);
      break;
  }
}

}  // namespace esl::compile
