#include "compile/vm.h"

#include "base/rng.h"
#include "elastic/buffer.h"
#include "elastic/context.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/shared.h"
#include "elastic/vlu.h"

namespace esl::compile {

namespace {
constexpr unsigned kVf = SignalBoard::kVf;
constexpr unsigned kSf = SignalBoard::kSf;
constexpr unsigned kVb = SignalBoard::kVb;
constexpr unsigned kSb = SignalBoard::kSb;
}  // namespace

// --- lifecycle ---------------------------------------------------------------

void Vm::ensureProgram() {
  if (hasProgram_ && prog_.topologyVersion == ctx_.netlist_.topologyVersion())
    return;
  prog_ = compileProgram(ctx_.netlist_, ctx_.board_);
  hasProgram_ = true;
}

void Vm::bind() {
  SignalBoard& b = ctx_.board_;
  ctrl_ = b.ctrlData();
  words_ = b.payloadData();
  spill_ = b.spillData();
  changed_ = b.changedData();
}

void Vm::settle() {
  ctx_.ensureTopologyCache();  // board layout current before addressing it
  ensureProgram();
  bind();
  ctx_.settleEventDrivenWith([this](NodeId id) { evalNode(id); });
}

void Vm::edge() {
  ctx_.ensureTopologyCache();
  ensureProgram();
  bind();
  ctx_.edgeSparseWith([this](NodeId id) { edgeNode(id, true); });
}

void Vm::prepare() {
  ctx_.ensureTopologyCache();
  ensureProgram();
  bind();
}

bool Vm::hasSpecializedOpFor(NodeId id) const {
  if (!hasProgram_ || id >= prog_.opOf.size()) return false;
  const std::uint32_t idx = prog_.opOf[id];
  return idx != Program::kNoOp && prog_.ops[idx].code != OpCode::kGeneric;
}

void Vm::edgeNodeForAudit(NodeId id) { edgeNode(id, false); }

// --- raw payload access (mirrors SignalBoard::setDataAt and friends) ---------

BitVec Vm::rdData(const SlotAddr& a) const {
  if (a.dataOff == SignalBoard::kNoSlot) return BitVec(a.width);
  if (a.dataOff & SignalBoard::kWideFlag)
    return spill_[a.dataOff & ~SignalBoard::kWideFlag];
  return BitVec(a.width, words_[a.dataOff]);
}

std::uint64_t Vm::rdLow64(const SlotAddr& a) const {
  if (a.dataOff == SignalBoard::kNoSlot) return 0;
  if (a.dataOff & SignalBoard::kWideFlag)
    return spill_[a.dataOff & ~SignalBoard::kWideFlag].toUint64();
  return words_[a.dataOff];
}

bool Vm::dataEqualsValue(const SlotAddr& a, const BitVec& v) const {
  if (v.width() != a.width) return false;
  if (a.dataOff == SignalBoard::kNoSlot) return true;
  if (a.dataOff & SignalBoard::kWideFlag)
    return spill_[a.dataOff & ~SignalBoard::kWideFlag] == v;
  return words_[a.dataOff] == v.toUint64();
}

void Vm::wrData(const SlotAddr& a, const BitVec& v) {
  ESL_CHECK(v.width() == a.width, "SignalBoard: payload width mismatch");
  if (a.dataOff == SignalBoard::kNoSlot) return;  // zero-width control token
  if (a.dataOff & SignalBoard::kWideFlag) {
    BitVec& dst = spill_[a.dataOff & ~SignalBoard::kWideFlag];
    if (dst == v) return;
    dst = v;
  } else {
    std::uint64_t& w = words_[a.dataOff];
    const std::uint64_t nv = v.toUint64();
    if (w == nv) return;
    w = nv;
  }
  changed_[a.chWord] |= a.bitMask;
}

void Vm::copyData(const SlotAddr& dst, const SlotAddr& src) {
  // Same-width routing copy (fork branches, mux selection); widths are equal
  // by construction, audited when the channels were bound.
  if (dst.dataOff == SignalBoard::kNoSlot) return;
  if (dst.dataOff & SignalBoard::kWideFlag) {
    BitVec& out = spill_[dst.dataOff & ~SignalBoard::kWideFlag];
    const BitVec& in = spill_[src.dataOff & ~SignalBoard::kWideFlag];
    if (out == in) return;
    out = in;
  } else {
    std::uint64_t& out = words_[dst.dataOff];
    if (out == words_[src.dataOff]) return;
    out = words_[src.dataOff];
  }
  changed_[dst.chWord] |= dst.bitMask;
}

std::uint64_t Vm::funcWord(const Op& op, const SlotAddr* P) const {
  const unsigned outW = P[op.nIn].width;
  const auto mask = [outW](std::uint64_t v) {
    return outW >= 64 ? v : v & ((std::uint64_t{1} << outW) - 1);
  };
  switch (op.fnKind) {
    case FuncKind::kId:
      return rdLow64(P[0]);
    case FuncKind::kAddK:
      return mask(rdLow64(P[0]) + op.fnA);
    case FuncKind::kAdd:
      return mask(rdLow64(P[0]) + rdLow64(P[1]));
    case FuncKind::kXor: {
      std::uint64_t acc = rdLow64(P[0]);
      for (unsigned i = 1; i < op.nIn; ++i) acc ^= rdLow64(P[i]);
      return acc;
    }
    case FuncKind::kGray: {
      const std::uint64_t x = rdLow64(P[0]);
      return x ^ (x >> 1);
    }
    case FuncKind::kJoinMux: {
      const std::uint64_t sel = rdLow64(P[0]);
      ESL_CHECK(sel < op.nIn - 1u, "join mux: select out of range");
      return rdLow64(P[1 + sel]);
    }
    case FuncKind::kConcat:
      return rdLow64(P[0]) | rdLow64(P[1]) << P[0].width;
    case FuncKind::kPermille:
      return hashChancePermille(rdLow64(P[0]),
                                static_cast<unsigned>(op.fnA), op.fnB)
                 ? 1
                 : 0;
    case FuncKind::kOpaque:
      break;
  }
  return 0;
}

bool Vm::fwdAt(const SlotAddr& a) const {
  return rdBit(a, kVf) && !rdBit(a, kSf) && !rdBit(a, kVb);
}

bool Vm::killAt(const SlotAddr& a) const {
  return rdBit(a, kVf) && rdBit(a, kVb);
}

bool Vm::bwdAt(const SlotAddr& a) const {
  return rdBit(a, kVb) && !rdBit(a, kSb) && !rdBit(a, kVf);
}

// --- combinational ops -------------------------------------------------------
// Each case is a line-for-line transcription of the node's evalComb against
// raw addresses; node state is read/written through friendship. The order and
// values of every signal write match the interpreted node exactly, so both
// backends settle to the same fixpoint through the shared worklist loop.

void Vm::evalNode(NodeId id) {
  const Op& op = prog_.ops[prog_.opOf[id]];
  const SlotAddr* P = prog_.ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      auto& eb = *static_cast<ElasticBuffer*>(op.obj);
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const bool hasTok = eb.count_ > 0;
      wrBit(out, kVf, hasTok);
      if (hasTok) {
        // Ring tokens normally carry the channel width (pushed from this very
        // channel), so the narrow case moves one word; the BitVec path keeps
        // the width audit for externally injected tokens.
        const BitVec& tok = eb.ring_[eb.head_];
        if (narrow(out) && tok.width() == out.width)
          wrWord(out, tok.word0());
        else
          wrData(out, tok);
      }
      wrBit(out, kSb,
            !hasTok && eb.antiTokens_ >= static_cast<int>(eb.antiCapacity_));
      wrBit(in, kSf, eb.occupancy() >= static_cast<int>(eb.capacity_));
      wrBit(in, kVb, eb.antiTokens_ > 0);
      break;
    }
    case OpCode::kEb0: {
      auto& eb = *static_cast<ElasticBuffer0*>(op.obj);
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const bool full = eb.slot_.has_value();
      wrBit(out, kVf, full);
      if (full) wrData(out, *eb.slot_);
      const bool leave = full && (!rdBit(out, kSf) || rdBit(out, kVb));
      wrBit(in, kSf, full && !leave);
      wrBit(in, kVb, !full && rdBit(out, kVb));
      wrBit(out, kSb, !full && !rdBit(in, kVf) && rdBit(in, kSb));
      break;
    }
    case OpCode::kBrokenEb: {
      auto& bb = *static_cast<BrokenBuffer*>(op.obj);
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      wrBit(out, kVf, bb.slot_.has_value());
      if (bb.slot_) wrData(out, *bb.slot_);
      wrBit(out, kSb, true);
      wrBit(in, kSf, bb.stopReg_);
      wrBit(in, kVb, false);
      break;
    }
    case OpCode::kFork: {
      auto& fk = *static_cast<ForkNode*>(op.obj);
      const SlotAddr& in = P[0];
      const unsigned n = op.nOut;
      const bool inVf = rdBit(in, kVf);
      for (unsigned i = 0; i < n; ++i) {
        const SlotAddr& br = P[1 + i];
        const bool pending = inVf && !fk.done_[i];
        wrBit(br, kVf, pending);
        if (pending) copyData(br, in);
        wrBit(br, kSb, !pending);
      }
      bool allDone = inVf;
      for (unsigned i = 0; i < n && allDone; ++i) {
        const SlotAddr& br = P[1 + i];
        allDone = fk.done_[i] || (inVf && (rdBit(br, kVb) || !rdBit(br, kSf)));
      }
      wrBit(in, kSf, !allDone);
      wrBit(in, kVb, false);
      break;
    }
    case OpCode::kFunc: {
      auto& fn = *static_cast<FuncNode*>(op.obj);
      const unsigned n = op.nIn;
      const SlotAddr& out = P[n];
      bool allIn = true;
      for (unsigned i = 0; i < n; ++i) allIn = allIn && rdBit(P[i], kVf);
      wrBit(out, kVf, allIn);
      if (allIn) {
        if (op.fnKind != FuncKind::kOpaque) {
          // Word-specialized datapath: fn_ is pure, so skipping its memo is
          // unobservable (the memo is a cache, never serialized).
          wrWord(out, funcWord(op, P));
        } else {
          bool hit = fn.memoValid_;
          for (unsigned i = 0; hit && i < n; ++i)
            hit = dataEqualsValue(P[i], fn.memoArgs_[i]);
          if (!hit) {
            fn.memoArgs_.resize(n);
            for (unsigned i = 0; i < n; ++i) fn.memoArgs_[i] = rdData(P[i]);
            fn.memoOut_ = fn.fn_(fn.memoArgs_);
            ESL_CHECK(fn.memoOut_.width() == fn.outputWidth(0),
                      "FuncNode '" + fn.name() +
                          "': function returned wrong width");
            fn.memoValid_ = true;
          }
          wrData(out, fn.memoOut_);
        }
      }
      const bool outVb = rdBit(out, kVb);
      const bool fire = allIn && (!rdBit(out, kSf) || outVb);
      bool allCan = true;
      for (unsigned i = 0; i < n; ++i)
        allCan = allCan && (rdBit(P[i], kVf) || !rdBit(P[i], kSb));
      const bool back = outVb && !allIn && allCan;
      for (unsigned i = 0; i < n; ++i) {
        wrBit(P[i], kVb, back);
        wrBit(P[i], kSf, !fire && !back);
      }
      wrBit(out, kSb, !allIn && !allCan);
      break;
    }
    case OpCode::kEeMux: {
      auto& mx = *static_cast<EarlyEvalMux*>(op.obj);
      const unsigned k = mx.dataInputs_;
      const SlotAddr& sel = P[0];
      const SlotAddr& out = P[1 + k];
      const bool selValid = rdBit(sel, kVf);
      unsigned selIdx = 0;
      if (selValid) {
        const std::uint64_t idx = rdLow64(sel);
        ESL_CHECK(idx < k,
                  "EarlyEvalMux '" + mx.name() + "': select value out of range");
        selIdx = static_cast<unsigned>(idx);
      }
      const bool usable =
          selValid && mx.pendingAnti_[selIdx] == 0 && rdBit(P[1 + selIdx], kVf);
      const bool fire = usable && (!rdBit(out, kSf) || rdBit(out, kVb));
      wrBit(out, kVf, usable);
      if (usable) copyData(out, P[1 + selIdx]);
      wrBit(out, kSb, !usable);
      wrBit(sel, kSf, !fire);
      wrBit(sel, kVb, false);
      for (unsigned i = 0; i < k; ++i) {
        const SlotAddr& in = P[1 + i];
        const bool anti =
            mx.pendingAnti_[i] + ((fire && i != selIdx) ? 1u : 0u) > 0;
        wrBit(in, kVb, anti);
        if (anti)
          wrBit(in, kSf, false);  // kill and stop are mutually exclusive
        else if (selValid && i == selIdx)
          wrBit(in, kSf, !fire);
        else
          wrBit(in, kSf, rdBit(in, kVf));
      }
      break;
    }
    case OpCode::kSource: {
      auto& src = *static_cast<TokenSource*>(op.obj);
      const SlotAddr& out = P[0];
      const std::optional<BitVec> tok =
          src.offering_ ? src.tokenAt(src.index_) : std::nullopt;
      const bool offer = tok.has_value() && src.killCredit_ == 0;
      wrBit(out, kVf, offer);
      if (offer) wrData(out, *tok);
      wrBit(out, kSb, false);  // sources always absorb anti-tokens
      break;
    }
    case OpCode::kSink: {
      auto& sk = *static_cast<TokenSink*>(op.obj);
      const SlotAddr& in = P[0];
      const bool wantAnti =
          sk.antiActive_ ||
          (sk.antiRemaining_ > 0 && sk.antiGate_ && sk.antiGate_(ctx_.cycle()));
      wrBit(in, kVb, wantAnti);
      wrBit(in, kSf, !wantAnti && sk.ready_ && !sk.ready_(ctx_.cycle()));
      break;
    }
    case OpCode::kNondetSource: {
      auto& ns = *static_cast<NondetSource*>(op.obj);
      const SlotAddr& out = P[0];
      const bool offer = ns.offeringNow(ctx_) && ns.killCredit_ == 0;
      wrBit(out, kVf, offer);
      if (offer) wrData(out, ns.valueNow(ctx_));
      wrBit(out, kSb, !offer && ns.killCredit_ >= ns.cap_);
      break;
    }
    case OpCode::kNondetSink: {
      auto& nk = *static_cast<NondetSink*>(op.obj);
      const SlotAddr& in = P[0];
      const bool anti = nk.antiNow(ctx_);
      wrBit(in, kVb, anti);
      wrBit(in, kSf, !anti && nk.stopNow(ctx_));
      break;
    }
    case OpCode::kShared: {
      auto& sm = *static_cast<SharedModule*>(op.obj);
      const unsigned k = sm.channels_;
      sm.validScratch_.resize(k);
      for (unsigned i = 0; i < k; ++i) sm.validScratch_[i] = rdBit(P[i], kVf);
      const sched::ChoiceReader reader = [this, &sm](unsigned b) {
        return ctx_.choice(sm, b);
      };
      const unsigned sched = sm.scheduler_->predict(sm.validScratch_, reader);
      ESL_CHECK(sched < k, "SharedModule: scheduler predicted out of range");
      sm.lastPrediction_ = sched;
      for (unsigned i = 0; i < k; ++i) {
        const SlotAddr& in = P[i];
        const SlotAddr& out = P[k + i];
        const bool routed = i == sched;
        const bool inVf = rdBit(in, kVf);
        const bool outVf = routed && inVf;
        wrBit(out, kVf, outVf);
        if (outVf) {
          if (!sm.memoValid_ || !dataEqualsValue(in, sm.memoIn_)) {
            sm.memoIn_ = rdData(in);
            sm.memoOut_ = sm.fn_(sm.memoIn_);
            ESL_CHECK(sm.memoOut_.width() == sm.outWidth_,
                      "SharedModule '" + sm.name() +
                          "': function returned wrong width");
            sm.memoValid_ = true;
          }
          wrData(out, sm.memoOut_);
        }
        const bool anti = rdBit(out, kVb);
        wrBit(in, kVb, anti);
        wrBit(out, kSb, !inVf && rdBit(in, kSb));
        wrBit(in, kSf, !anti && (routed ? rdBit(out, kSf) : true));
      }
      break;
    }
    case OpCode::kVlu: {
      auto& vu = *static_cast<StallingVLU*>(op.obj);
      const SlotAddr& in = P[0];
      const SlotAddr& out = P[1];
      const bool haveResult = vu.result_.has_value();
      wrBit(out, kVf, haveResult);
      if (haveResult) wrData(out, *vu.result_);
      wrBit(out, kSb, !haveResult);
      const bool leave = haveResult && (!rdBit(out, kSf) || rdBit(out, kVb));
      const bool canAccept = !vu.pending_ && (!haveResult || leave);
      wrBit(in, kSf, !canAccept);
      wrBit(in, kVb, false);
      break;
    }
    case OpCode::kGeneric:
      op.node->evalComb(ctx_);
      break;
  }
}

// --- clock-edge ops ----------------------------------------------------------
// Transcriptions of each node's clockEdge. `applyStats == false` (the edge
// audit's replay) suppresses only the statistics that packState() excludes —
// serialized state always advances, so replaying an edge from a rewound
// snapshot lands on the same bytes.

void Vm::edgeNode(NodeId id, bool applyStats) {
  const Op& op = prog_.ops[prog_.opOf[id]];
  const SlotAddr* P = prog_.ports.data() + op.portBase;
  switch (op.code) {
    case OpCode::kEb: {
      auto& eb = *static_cast<ElasticBuffer*>(op.obj);
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      if (out.kill || out.fwd) {
        ESL_ASSERT(eb.count_ > 0);
        eb.popToken();
      } else if (out.bwd) {
        ESL_ASSERT(eb.count_ == 0);
        ++eb.antiTokens_;
      }
      if (in.kill) {
        ESL_ASSERT(eb.antiTokens_ > 0);
        --eb.antiTokens_;
      } else if (in.fwd) {
        if (narrow(P[0])) {
          // pushToken() with the incoming word written in place (channel
          // payloads always carry the channel width; no BitVec temporary).
          unsigned tail = eb.head_ + eb.count_;
          if (tail >= eb.capacity_) tail -= eb.capacity_;
          eb.ring_[tail].assignNarrow(P[0].width, words_[P[0].dataOff]);
          ++eb.count_;
        } else {
          eb.pushToken(rdData(P[0]));
        }
        ESL_ASSERT(eb.count_ <= eb.capacity_);
      } else if (in.bwd) {
        ESL_ASSERT(eb.antiTokens_ > 0);
        --eb.antiTokens_;
      }
      while (eb.count_ > 0 && eb.antiTokens_ > 0) {
        eb.popToken();
        --eb.antiTokens_;
      }
      ESL_ASSERT(eb.count_ == 0 || eb.antiTokens_ == 0);
      break;
    }
    case OpCode::kEb0: {
      auto& eb = *static_cast<ElasticBuffer0*>(op.obj);
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      if (out.kill || out.fwd) eb.slot_.reset();
      if (in.fwd) {
        ESL_ASSERT(!eb.slot_.has_value());
        eb.slot_ = rdData(P[0]);
      }
      break;
    }
    case OpCode::kBrokenEb: {
      auto& bb = *static_cast<BrokenBuffer*>(op.obj);
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      bb.stopReg_ = bb.slot_.has_value();
      if (out.fwd) bb.slot_.reset();
      if (in.fwd) bb.slot_ = rdData(P[0]);  // may overwrite a live token
      break;
    }
    case OpCode::kFork: {
      auto& fk = *static_cast<ForkNode*>(op.obj);
      const SlotAddr& in = P[0];
      const unsigned n = op.nOut;
      if (!rdBit(in, kVf)) break;
      bool all = true;
      forkScratch_.resize(n);
      for (unsigned i = 0; i < n; ++i) {
        const SlotAddr& br = P[1 + i];
        forkScratch_[i] = fk.done_[i] || rdBit(br, kVb) || !rdBit(br, kSf);
        all = all && forkScratch_[i];
      }
      if (all)
        fk.done_.assign(n, false);
      else
        fk.done_.assign(forkScratch_.begin(), forkScratch_.end());
      break;
    }
    case OpCode::kFunc: {
      auto& fn = *static_cast<FuncNode*>(op.obj);
      if (fwdAt(P[op.nIn]) && applyStats) ++fn.firings_;
      break;
    }
    case OpCode::kEeMux: {
      auto& mx = *static_cast<EarlyEvalMux*>(op.obj);
      const unsigned k = mx.dataInputs_;
      const SlotAddr& sel = P[0];
      const SlotAddr& out = P[1 + k];
      const bool selValid = rdBit(sel, kVf);
      unsigned selIdx = 0;
      if (selValid) {
        const std::uint64_t idx = rdLow64(sel);
        ESL_CHECK(idx < k,
                  "EarlyEvalMux '" + mx.name() + "': select value out of range");
        selIdx = static_cast<unsigned>(idx);
      }
      const bool usable =
          selValid && mx.pendingAnti_[selIdx] == 0 && rdBit(P[1 + selIdx], kVf);
      const bool fire = usable && (!rdBit(out, kSf) || rdBit(out, kVb));
      for (unsigned i = 0; i < k; ++i) {
        const Ev in = evAt(P[1 + i]);
        unsigned avail = mx.pendingAnti_[i] + ((fire && i != selIdx) ? 1u : 0u);
        if (in.vb && (in.vf || !in.sb)) {
          ESL_ASSERT(avail > 0);
          --avail;  // delivered: killed a token or moved upstream
        }
        if (fire && i != selIdx && applyStats) ++mx.antiEmitted_;
        mx.pendingAnti_[i] = avail;
      }
      if (fwdAt(out) && applyStats) ++mx.firings_;
      break;
    }
    case OpCode::kSource: {
      auto& src = *static_cast<TokenSource*>(op.obj);
      const Ev out = evAt(P[0]);
      if (out.kill) {
        ++src.index_;
        if (applyStats) ++src.killedCount_;
        src.offering_ = false;
      } else if (out.fwd) {
        ++src.index_;
        if (applyStats) ++src.emitted_;
        src.offering_ = false;
      } else if (out.bwd) {
        ++src.killCredit_;
      }
      // An owed kill silently consumes the next available token (one per
      // cycle).
      if (src.killCredit_ > 0 && src.tokenAt(src.index_).has_value() &&
          !out.vf) {
        ++src.index_;
        --src.killCredit_;
        if (applyStats) ++src.killedCount_;
        src.offering_ = false;
      }
      // Offer the next token when the gate opens for the upcoming cycle.
      if (!src.offering_ && (!src.gate_ || src.gate_(ctx_.cycle() + 1)) &&
          src.tokenAt(src.index_).has_value() && src.killCredit_ == 0)
        src.offering_ = true;
      break;
    }
    case OpCode::kSink: {
      auto& sk = *static_cast<TokenSink*>(op.obj);
      const Ev in = evAt(P[0]);
      if (in.fwd && applyStats)
        sk.transfers_.push_back({ctx_.cycle(), rdData(P[0])});
      if (in.vb) {
        const bool delivered = in.vf || !in.sb;
        if (delivered) {
          ESL_ASSERT(sk.antiRemaining_ > 0);
          --sk.antiRemaining_;
          sk.antiActive_ = false;
        } else {
          sk.antiActive_ = true;  // Retry-: persist until delivered
        }
      }
      break;
    }
    case OpCode::kNondetSource: {
      auto& ns = *static_cast<NondetSource*>(op.obj);
      const Ev out = evAt(P[0]);
      bool offered = ns.offeringNow(ctx_);
      const BitVec v = ns.valueNow(ctx_);
      if (out.kill || out.fwd) offered = false;
      if (out.bwd) ++ns.killCredit_;
      if (offered && ns.killCredit_ > 0) {
        offered = false;
        --ns.killCredit_;
      }
      ns.offering_ = offered;
      ns.value_ = offered ? v : BitVec(ns.width_);
      // Bounded fairness: count consecutive cycles without an offer. Must
      // re-query offeringNow() AFTER the offering_ update, like the node.
      if (ns.offeringNow(ctx_))
        ns.idleStreak_ = 0;
      else if (ns.idleStreak_ < ns.maxIdle_)
        ++ns.idleStreak_;
      break;
    }
    case OpCode::kNondetSink: {
      auto& nk = *static_cast<NondetSink*>(op.obj);
      const Ev in = evAt(P[0]);
      nk.consecutiveStops_ = in.sf ? nk.consecutiveStops_ + 1 : 0;
      if (nk.consecutiveStops_ > nk.maxStops_)
        nk.consecutiveStops_ = nk.maxStops_;
      if (in.vb) nk.antiActive_ = !(in.vf || !in.sb);
      break;
    }
    case OpCode::kShared: {
      auto& sm = *static_cast<SharedModule*>(op.obj);
      const unsigned k = sm.channels_;
      // lastPrediction_ is the settled prediction (evalComb ran on the
      // settled signals); predict() is pure, no need to recompute it.
      sched::Observation& obs = sm.obsScratch_;
      obs.predicted = sm.lastPrediction_;
      obs.valid.resize(k);
      obs.demand.resize(k);
      obs.served.resize(k);
      obs.killed.resize(k);
      bool anyDemand = false;
      for (unsigned i = 0; i < k; ++i) {
        const Ev in = evAt(P[i]);
        const Ev out = evAt(P[k + i]);
        obs.valid[i] = in.vf;
        obs.demand[i] = out.sf && !out.vf;
        obs.served[i] = out.fwd;
        obs.killed[i] = in.kill;
        if (obs.served[i] && applyStats) ++sm.served_[i];
        anyDemand = anyDemand || obs.demand[i];
      }
      if (anyDemand && applyStats) ++sm.demandCycles_;
      sm.scheduler_->observe(obs);
      break;
    }
    case OpCode::kVlu: {
      auto& vu = *static_cast<StallingVLU*>(op.obj);
      const Ev in = evAt(P[0]);
      const Ev out = evAt(P[1]);
      if (out.kill || out.fwd) {
        if (out.fwd && applyStats) ++vu.completed_;
        vu.result_.reset();
      }
      if (vu.pending_) {
        ESL_ASSERT(!vu.result_.has_value());
        vu.result_ = vu.exact_(*vu.pending_);
        vu.pending_.reset();
      } else if (in.fwd) {
        const BitVec x = rdData(P[0]);
        if (vu.err_(x)) {
          vu.pending_ = x;  // bubble next cycle, sender stalled
          if (applyStats) ++vu.stalls_;
        } else {
          vu.result_ = vu.exact_(x);  // approx == exact when no error flagged
        }
      }
      break;
    }
    case OpCode::kGeneric:
      op.node->clockEdge(ctx_);
      break;
  }
}

}  // namespace esl::compile
