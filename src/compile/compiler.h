// Bytecode compiler for the compiled simulation backend.
//
// compileProgram() lowers a netlist once into a flat program of per-node ops:
// each op carries the node's kind (resolved to a specialized opcode by exact
// type), a concrete object pointer (the downcast done at compile time), an
// offset into the VM's node-state arena, and a table of port addresses
// resolved against the board's current layout. The VM (src/compile/vm.h) then
// executes settle rounds and clock edges with raw word loads/stores: no
// virtual dispatch, no Sig accessor proxies, no slot lookups — and no
// pointer-chasing into node objects — on the hot path.
//
// The op and port records are deliberately flat and small (SlotAddr is 12
// bytes; derived coordinates are shifts off the slot index) so one settle
// step streams the op, its ports and its arena record from a couple of cache
// lines instead of touching 5–8 scattered heap objects per active node.
//
// Nodes whose exact type is not in the catalog (user subclasses), nodes with
// unbound ports, nodes whose state does not fit the word arena (payloads
// wider than 64 bits, forks with more than 64 branches), and — under
// sharding — nodes touching a boundary slot compile to OpCode::kGeneric,
// which falls back to the virtual evalComb/clockEdge through the staging-
// aware Sig accessors: the program is always total over the netlist.
//
// A Program is valid for one (topologyVersion, board layoutGeneration) pair;
// the VM recompiles whenever either moves. Topology changes (transformations,
// splices) bump the former; shard-count changes permute the board WITHOUT a
// topology bump, which only the latter catches.
#pragma once

#include <cstdint>
#include <vector>

#include "elastic/signal_board.h"

namespace esl {
class Netlist;
class Node;
}  // namespace esl

namespace esl::compile {

/// Specialized per-kind opcodes (exact-type match; subclasses stay generic).
enum class OpCode : std::uint8_t {
  kEb,            ///< ElasticBuffer
  kEb0,           ///< ElasticBuffer0
  kBrokenEb,      ///< BrokenBuffer
  kFork,          ///< ForkNode
  kFunc,          ///< FuncNode
  kEeMux,         ///< EarlyEvalMux
  kSource,        ///< TokenSource
  kSink,          ///< TokenSink
  kNondetSource,  ///< NondetSource
  kNondetSink,    ///< NondetSink
  kShared,        ///< SharedModule
  kVlu,           ///< StallingVLU
  kGeneric,       ///< fallback: virtual evalComb/clockEdge
};

/// One channel endpoint, 12 bytes. The plane/word coordinates the VM needs
/// are pure shifts of the slot index, computed inline — keeping the record
/// small matters more than pre-computing two shifts: a node's whole port
/// table now fits one cache line.
struct SlotAddr {
  std::uint32_t slot = SignalBoard::kNoSlot;
  std::uint32_t dataOff = SignalBoard::kNoSlot;  ///< words_ | spill_+kWideFlag
  std::uint32_t width = 0;                       ///< payload width

  bool bound() const { return slot != SignalBoard::kNoSlot; }
  std::uint32_t ctrlBase() const { return (slot >> 6) * 4; }
  std::uint32_t chWord() const { return slot >> 6; }
  std::uint64_t bitMask() const { return std::uint64_t{1} << (slot & 63); }
};

/// Datapath specialization of a registry-built FuncNode: known catalog
/// functions whose operands all fit one word lower to direct word arithmetic
/// — no memo probe, no std::function call, no BitVec temporaries. kOpaque
/// keeps the node's memoized fn_ call (arbitrary C++ closures).
enum class FuncKind : std::uint8_t {
  kOpaque,
  kId,        ///< out = in0
  kAddK,      ///< out = (in0 + fnA) mod 2^w
  kAdd,       ///< out = (in0 + in1) mod 2^w
  kXor,       ///< out = in0 ^ in1 ^ ...
  kGray,      ///< out = in0 ^ (in0 >> 1)
  kJoinMux,   ///< out = in[1 + in0]
  kConcat,    ///< out = in0 | in1 << width(in0)
  kPermille,  ///< out = hashChancePermille(in0, fnA, fnB)
};

/// One node lowered to an op. Ports live in Program::ports at [portBase,
/// portBase + nIn + nOut): inputs first, then outputs. Sequential state lives
/// in the VM's arena at stateOff (kNoState: the op keeps its state on the
/// node object — kFunc/kShared, whose "state" is memos/a polymorphic
/// scheduler — or is kGeneric).
struct Op {
  static constexpr std::uint32_t kNoState = ~std::uint32_t{0};

  OpCode code = OpCode::kGeneric;
  FuncKind fnKind = FuncKind::kOpaque;  ///< kFunc only
  std::uint16_t nIn = 0;
  std::uint16_t nOut = 0;
  std::uint32_t portBase = 0;
  std::uint32_t stateOff = kNoState;  ///< arena word offset (VM assigns)
  NodeId nodeId = 0;                  ///< owning node (arena flush liveness)
  std::uint64_t fnA = 0;  ///< kFunc: addk constant / permille threshold;
                          ///< kEb: capacity; kNondetSource: killCredit cap;
                          ///< kNondetSink: max consecutive stops
  std::uint64_t fnB = 0;  ///< kFunc: permille salt; kEb: anti capacity;
                          ///< kNondetSource: maxIdle; kNondetSink: emitsAnti
  Node* node = nullptr;  ///< always set (names in errors, generic fallback)
  void* obj = nullptr;   ///< exact-type downcast for specialized opcodes
};

struct Program {
  static constexpr std::uint32_t kNoOp = ~std::uint32_t{0};

  std::vector<Op> ops;                ///< live nodes, insertion order
  std::vector<std::uint32_t> opOf;    ///< NodeId -> ops index (kNoOp = dead id)
  std::vector<SlotAddr> ports;
  std::uint32_t stateWords = 0;       ///< node-state arena size (u64 words)
  std::uint64_t topologyVersion = 0;  ///< netlist version compiled against
  std::uint64_t boardLayout = 0;      ///< board layoutGeneration compiled against
};

/// Lowers the netlist against the board's current layout. With a shard plan
/// (shards > 1) nodes touching boundary slots stay generic, and each shard's
/// arena slice starts cache-line-aligned so shard workers never false-share a
/// state record.
Program compileProgram(Netlist& nl, const SignalBoard& board,
                       const ShardPlan* plan = nullptr);

}  // namespace esl::compile
