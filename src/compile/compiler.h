// Bytecode compiler for the compiled simulation backend.
//
// compileProgram() lowers a netlist once into a flat program of per-node ops:
// each op carries the node's kind (resolved to a specialized opcode by exact
// type), a concrete object pointer (the downcast done at compile time) and a
// table of port addresses with every SignalBoard coordinate — control-plane
// word base, bit mask, payload arena offset, width — resolved against the
// board's current layout. The VM (src/compile/vm.h) then executes settle
// rounds and clock edges with raw word loads/stores: no virtual dispatch, no
// Sig accessor proxies, no slot lookups on the hot path.
//
// Nodes whose exact type is not in the catalog (user subclasses) and nodes
// with unbound ports compile to OpCode::kGeneric, which falls back to the
// virtual evalComb/clockEdge — the program is always total over the netlist.
//
// A Program is valid for one (topologyVersion, board layout) pair; the VM
// recompiles whenever the netlist's topologyVersion moves (transformations,
// splices), which also covers every board re-layout, since layout() is a pure
// function of the topology and the shard plan.
#pragma once

#include <cstdint>
#include <vector>

#include "elastic/signal_board.h"

namespace esl {
class Netlist;
class Node;
}  // namespace esl

namespace esl::compile {

/// Specialized per-kind opcodes (exact-type match; subclasses stay generic).
enum class OpCode : std::uint8_t {
  kEb,            ///< ElasticBuffer
  kEb0,           ///< ElasticBuffer0
  kBrokenEb,      ///< BrokenBuffer
  kFork,          ///< ForkNode
  kFunc,          ///< FuncNode
  kEeMux,         ///< EarlyEvalMux
  kSource,        ///< TokenSource
  kSink,          ///< TokenSink
  kNondetSource,  ///< NondetSource
  kNondetSink,    ///< NondetSink
  kShared,        ///< SharedModule
  kVlu,           ///< StallingVLU
  kGeneric,       ///< fallback: virtual evalComb/clockEdge
};

/// One channel endpoint with every board coordinate resolved at compile time.
struct SlotAddr {
  std::uint32_t slot = SignalBoard::kNoSlot;
  std::uint32_t ctrlBase = 0;  ///< ctrl_ index of the slot group's vf word
  std::uint32_t chWord = 0;    ///< changed_ word index (slot / 64)
  std::uint32_t dataOff = SignalBoard::kNoSlot;  ///< words_ | spill_+kWideFlag
  std::uint64_t bitMask = 0;                     ///< 1 << (slot % 64)
  unsigned width = 0;                            ///< payload width
  bool bound = false;  ///< false: port had no live channel slot
};

/// Datapath specialization of a registry-built FuncNode: known catalog
/// functions whose operands all fit one word lower to direct word arithmetic
/// — no memo probe, no std::function call, no BitVec temporaries. kOpaque
/// keeps the node's memoized fn_ call (arbitrary C++ closures).
enum class FuncKind : std::uint8_t {
  kOpaque,
  kId,        ///< out = in0
  kAddK,      ///< out = (in0 + fnA) mod 2^w
  kAdd,       ///< out = (in0 + in1) mod 2^w
  kXor,       ///< out = in0 ^ in1 ^ ...
  kGray,      ///< out = in0 ^ (in0 >> 1)
  kJoinMux,   ///< out = in[1 + in0]
  kConcat,    ///< out = in0 | in1 << width(in0)
  kPermille,  ///< out = hashChancePermille(in0, fnA, fnB)
};

/// One node lowered to an op. Ports live in Program::ports at [portBase,
/// portBase + nIn + nOut): inputs first, then outputs.
struct Op {
  OpCode code = OpCode::kGeneric;
  FuncKind fnKind = FuncKind::kOpaque;  ///< kFunc only
  std::uint16_t nIn = 0;
  std::uint16_t nOut = 0;
  std::uint32_t portBase = 0;
  std::uint64_t fnA = 0;  ///< addk constant / permille threshold
  std::uint64_t fnB = 0;  ///< permille salt
  Node* node = nullptr;  ///< always set (names in errors, generic fallback)
  void* obj = nullptr;   ///< exact-type downcast for specialized opcodes
};

struct Program {
  static constexpr std::uint32_t kNoOp = ~std::uint32_t{0};

  std::vector<Op> ops;                ///< live nodes, insertion order
  std::vector<std::uint32_t> opOf;    ///< NodeId -> ops index (kNoOp = dead id)
  std::vector<SlotAddr> ports;
  std::uint64_t topologyVersion = 0;  ///< netlist version compiled against
};

/// Lowers the netlist against the board's current layout.
Program compileProgram(Netlist& nl, const SignalBoard& board);

}  // namespace esl::compile
