// Bytecode VM for the compiled simulation backend.
//
// Executes the Program produced by compile/compiler.h over the SimContext's
// SignalBoard arena. The VM reuses the context's event-driven kernel loops
// verbatim (the drainShardWith/edgeSparseWith templates), swapping only the
// per-node dispatch: instead of `nodePtr_[id]->evalComb(ctx)` it runs a
// specialized op over pre-resolved word/bitplane addresses — the settle stays
// a bitmap worklist and the edge stays a hot-group event scan, so cycles stay
// O(active) while per-node cost drops to raw loads/stores.
//
// Every specialized op is a line-for-line transcription of the node's
// evalComb/clockEdge against raw addresses (the VM is a friend of the node
// catalog), preserving exact write order and change-tracking semantics; the
// write helpers mirror SignalBoard::setBitAt/setDataAt, so settled fixpoints
// — and therefore packState() — are bit-identical to the interpreted kernels.
// Cross-check mode keeps the interpreted kernels as the runtime oracle.
//
// The program is recompiled whenever the netlist's topologyVersion moves, so
// transform-then-resume (speculation rewrites between cycles) works without
// explicit invalidation. Raw board pointers are re-fetched at every phase
// (bind()), surviving board re-layouts.
#pragma once

#include <cstdint>

#include "compile/compiler.h"

namespace esl {
class SimContext;
}

namespace esl::compile {

class Vm {
 public:
  explicit Vm(SimContext& ctx) : ctx_(ctx) {}

  /// Compiled settle: event-driven worklist over specialized ops.
  void settle();
  /// Compiled clock edge: dirty-tracked hot-group scan over specialized ops.
  void edge();

  /// Compiles/binds without running a phase (audit paths).
  void prepare();
  /// True when `id` lowered to a specialized op (generic fallbacks run the
  /// same virtual code as the interpreted kernel, so audits skip them).
  bool hasSpecializedOpFor(NodeId id) const;
  /// Runs one node's compiled clock edge without statistics side effects
  /// (the edge audit replays state transitions; stats must count once).
  void edgeNodeForAudit(NodeId id);

 private:
  void ensureProgram();
  void bind();
  void evalNode(NodeId id);
  void edgeNode(NodeId id, bool applyStats);

  // --- raw board access (mirrors SignalBoard::setBitAt/setDataAt exactly) ---
  bool rdBit(const SlotAddr& a, unsigned plane) const {
    return (ctrl_[a.ctrlBase + plane] & a.bitMask) != 0;
  }
  void wrBit(const SlotAddr& a, unsigned plane, bool v) {
    // Branch-free equivalent of "flip and mark changed iff different": delta
    // is bitMask when the stored bit differs from v, else 0. Signal writes
    // follow token movement, so a compare-then-write branch mispredicts
    // chronically; straight-line xor/or is cheaper than the flush.
    std::uint64_t& w = ctrl_[a.ctrlBase + plane];
    const std::uint64_t delta =
        (w ^ (0 - static_cast<std::uint64_t>(v))) & a.bitMask;
    w ^= delta;
    changed_[a.chWord] |= delta;
  }
  BitVec rdData(const SlotAddr& a) const;
  std::uint64_t rdLow64(const SlotAddr& a) const;
  bool dataEqualsValue(const SlotAddr& a, const BitVec& v) const;
  void wrData(const SlotAddr& a, const BitVec& v);
  void copyData(const SlotAddr& dst, const SlotAddr& src);
  /// setDataAt() narrow fast path for word-specialized datapaths: `v` is
  /// already masked to the slot width, so the width audit holds by
  /// construction and no BitVec is materialized.
  void wrWord(const SlotAddr& a, std::uint64_t v) {
    if (a.dataOff == SignalBoard::kNoSlot) return;
    std::uint64_t& w = words_[a.dataOff];
    const std::uint64_t diff = w == v ? 0 : a.bitMask;  // cmov, not a branch
    w = v;
    changed_[a.chWord] |= diff;
  }
  /// True when the slot's payload lives in the narrow word arena (width in
  /// [1, 64]) — the precondition for the wrWord/word0 fast paths.
  static bool narrow(const SlotAddr& a) {
    return a.dataOff != SignalBoard::kNoSlot &&
           !(a.dataOff & SignalBoard::kWideFlag);
  }
  /// Word-arithmetic datapath of a specialized FuncNode (fnKind != kOpaque).
  std::uint64_t funcWord(const Op& op, const SlotAddr* P) const;

  // Event predicates over the settled planes (edge phase).
  bool fwdAt(const SlotAddr& a) const;
  bool killAt(const SlotAddr& a) const;
  bool bwdAt(const SlotAddr& a) const;
  /// All three event predicates from one pass over the slot's plane words
  /// (edge ops branch on several of them; one load per plane, not per use).
  struct Ev {
    bool vf, sf, vb, sb;
    bool fwd, kill, bwd;
  };
  Ev evAt(const SlotAddr& a) const {
    const bool vf = (ctrl_[a.ctrlBase + 0] & a.bitMask) != 0;
    const bool sf = (ctrl_[a.ctrlBase + 1] & a.bitMask) != 0;
    const bool vb = (ctrl_[a.ctrlBase + 2] & a.bitMask) != 0;
    const bool sb = (ctrl_[a.ctrlBase + 3] & a.bitMask) != 0;
    return {vf, sf, vb, sb, vf && !sf && !vb, vf && vb, vb && !sb && !vf};
  }

  SimContext& ctx_;
  Program prog_;
  bool hasProgram_ = false;

  // Raw arena pointers, re-fetched by bind() before every phase.
  std::uint64_t* ctrl_ = nullptr;
  std::uint64_t* words_ = nullptr;
  BitVec* spill_ = nullptr;
  std::uint64_t* changed_ = nullptr;

  std::vector<bool> forkScratch_;  ///< fork edge: next done_ bits
};

}  // namespace esl::compile
