// Bytecode VM for the compiled simulation backend.
//
// Executes the Program produced by compile/compiler.h over the SimContext's
// SignalBoard arena. The VM reuses the context's event-driven kernel loops
// verbatim (the drainShardWith/edgeSparseWith templates — and their sharded
// counterparts settleShardedWith/edgeShardedWith when shards > 1), swapping
// only the per-node dispatch: instead of `nodePtr_[id]->evalComb(ctx)` it
// runs a specialized op over pre-resolved word/bitplane addresses — the
// settle stays a bitmap worklist and the edge stays a hot-group event scan,
// so cycles stay O(active) while per-node cost drops to raw loads/stores.
//
// --- Node-state arena --------------------------------------------------------
//
// Per-node sequential state (EB rings, fork done bits, source cursors, VLU
// operands, pending anti-token counters) lives in one contiguous VM-owned
// u64 arena, indexed by each op's precomputed stateOff: a settle step streams
// the op record, its port records and its state record instead of chasing
// into a heap-allocated node object (~5–8 cache lines per active op before,
// ~2–3 sequential streams after). The node objects remain the authoritative
// store whenever the VM is not running: every compiled phase adopts
// (node → arena) lazily on entry, and flushState() publishes (arena → node)
// before anything interprets node state — packState(), the sweep/interpreted
// kernels, the cross-check audits. Snapshots therefore stay byte-identical
// to the interpreter: packState always reads freshly flushed node objects.
// Statistics (firings, transfer logs) are excluded from the arena and written
// directly to the nodes — packState excludes them too, so they need no flush
// discipline.
//
// Every specialized op is a line-for-line transcription of the node's
// evalComb/clockEdge against raw addresses and arena words (the VM is a
// friend of the node catalog), preserving exact write order and
// change-tracking semantics; the write helpers mirror
// SignalBoard::setBitAt/setDataAt, so settled fixpoints — and therefore
// packState() — are bit-identical to the interpreted kernels. Cross-check
// mode keeps the interpreted kernels as the runtime oracle.
//
// The program is recompiled whenever the netlist's topologyVersion OR the
// board's layoutGeneration moves (a shard-count change permutes slots without
// a topology bump). Recompiling first flushes the old arena into every node
// that is still alive, so state survives netlist surgery and re-layouts. Raw
// board pointers are re-fetched at every phase (bind()).
//
// Sharded composition (shards > 1): the compiler keeps every boundary-
// adjacent node generic (staging-aware Sig accessors), interior specialized
// ops write owner-exclusive planes, and each shard's arena slice starts
// cache-line-aligned — so the staged boundary exchange of the sharded
// kernels carries over unchanged and packState stays bit-identical to the
// serial compiled backend for every shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "compile/compiler.h"

namespace esl {
class SimContext;
}

namespace esl::compile {

class Vm {
 public:
  explicit Vm(SimContext& ctx) : ctx_(ctx) {}

  /// Compiled settle: event-driven worklist over specialized ops (sharded
  /// level-synchronous rounds when the context is sharded).
  void settle();
  /// Compiled clock edge: dirty-tracked hot-group scan over specialized ops.
  void edge();

  /// Compiles/binds without running a phase (audit paths).
  void prepare();
  /// True when `id` lowered to a specialized op (generic fallbacks run the
  /// same virtual code as the interpreted kernel, so audits skip them).
  bool hasSpecializedOpFor(NodeId id) const;
  /// Runs one node's compiled clock edge without statistics side effects
  /// (the edge audit replays state transitions; stats must count once).
  /// Self-contained arena surgery: adopts the node object (which the audit
  /// just rewound), replays the op, and flushes the result back so the
  /// caller's packState() comparison sees the compiled transition.
  void edgeNodeForAudit(NodeId id);

  /// Publishes the arena into the node objects (no-op unless a compiled
  /// phase ran since the last flush) and hands authority back to the nodes.
  /// SimContext calls this before ANY interpreted read of node state:
  /// packState, the sweep/interpreted kernels, unpack/reset invalidation.
  void flushState();
  /// Drops the arena without flushing (node objects were just overwritten:
  /// unpackState/reset). The next compiled phase re-adopts.
  void invalidateState() { arenaValid_ = false; }

 private:
  void ensureProgram();
  void bind();
  void evalNode(NodeId id);
  void edgeNode(NodeId id, bool applyStats);
  /// Node → arena for every stateful op (phase entry with a stale arena).
  void adoptArena();
  void adoptOp(const Op& op);
  void flushOp(const Op& op);

  // --- raw board access (mirrors SignalBoard::setBitAt/setDataAt exactly) ---
  bool rdBit(const SlotAddr& a, unsigned plane) const {
    return (ctrl_[a.ctrlBase() + plane] & a.bitMask()) != 0;
  }
  void wrBit(const SlotAddr& a, unsigned plane, bool v) {
    // Branch-free equivalent of "flip and mark changed iff different": delta
    // is bitMask when the stored bit differs from v, else 0. Signal writes
    // follow token movement, so a compare-then-write branch mispredicts
    // chronically; straight-line xor/or is cheaper than the flush.
    std::uint64_t& w = ctrl_[a.ctrlBase() + plane];
    const std::uint64_t delta =
        (w ^ (0 - static_cast<std::uint64_t>(v))) & a.bitMask();
    w ^= delta;
    changed_[a.chWord()] |= delta;
  }
  BitVec rdData(const SlotAddr& a) const;
  std::uint64_t rdLow64(const SlotAddr& a) const;
  bool dataEqualsValue(const SlotAddr& a, const BitVec& v) const;
  void wrData(const SlotAddr& a, const BitVec& v);
  void copyData(const SlotAddr& dst, const SlotAddr& src);
  /// setDataAt() narrow fast path for word-specialized datapaths: `v` is
  /// already masked to the slot width, so the width audit holds by
  /// construction and no BitVec is materialized.
  void wrWord(const SlotAddr& a, std::uint64_t v) {
    if (a.dataOff == SignalBoard::kNoSlot) return;
    std::uint64_t& w = words_[a.dataOff];
    const std::uint64_t diff = w == v ? 0 : a.bitMask();  // cmov, not a branch
    w = v;
    changed_[a.chWord()] |= diff;
  }
  /// True when the slot's payload lives in the narrow word arena (width in
  /// [1, 64]) — the precondition for the wrWord/word0 fast paths.
  static bool narrow(const SlotAddr& a) {
    return a.dataOff != SignalBoard::kNoSlot &&
           !(a.dataOff & SignalBoard::kWideFlag);
  }
  /// Word-arithmetic datapath of a specialized FuncNode (fnKind != kOpaque).
  std::uint64_t funcWord(const Op& op, const SlotAddr* P) const;

  // Event predicates over the settled planes (edge phase).
  bool fwdAt(const SlotAddr& a) const;
  bool killAt(const SlotAddr& a) const;
  bool bwdAt(const SlotAddr& a) const;
  /// All three event predicates from one pass over the slot's plane words
  /// (edge ops branch on several of them; one load per plane, not per use).
  struct Ev {
    bool vf, sf, vb, sb;
    bool fwd, kill, bwd;
  };
  Ev evAt(const SlotAddr& a) const {
    const std::uint32_t base = a.ctrlBase();
    const std::uint64_t m = a.bitMask();
    const bool vf = (ctrl_[base + 0] & m) != 0;
    const bool sf = (ctrl_[base + 1] & m) != 0;
    const bool vb = (ctrl_[base + 2] & m) != 0;
    const bool sb = (ctrl_[base + 3] & m) != 0;
    return {vf, sf, vb, sb, vf && !sf && !vb, vf && vb, vb && !sb && !vf};
  }

  SimContext& ctx_;
  Program prog_;
  bool hasProgram_ = false;

  // Raw arena pointers, re-fetched by bind() before every phase.
  std::uint64_t* ctrl_ = nullptr;
  std::uint64_t* words_ = nullptr;
  BitVec* spill_ = nullptr;
  std::uint64_t* changed_ = nullptr;

  /// Node-state arena (u64 records at each op's stateOff). Authoritative only
  /// while arenaValid_; otherwise the node objects are.
  std::vector<std::uint64_t> state_;
  bool arenaValid_ = false;
};

}  // namespace esl::compile
