#include "backend/smv.h"

#include <sstream>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/shared.h"

namespace esl::backend {

namespace {

std::string chv(ChannelId id, const char* sig) {
  return "ch" + std::to_string(id) + "_" + sig;
}

std::string nv(NodeId id, const std::string& what) {
  return "n" + std::to_string(id) + "_" + what;
}

}  // namespace

std::string emitSmv(const Netlist& nl) {
  std::ostringstream vars, defs, assigns, specs;

  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);

    if (const auto* eb = dynamic_cast<const ElasticBuffer*>(&n)) {
      const ChannelId in = n.input(0), out = n.output(0);
      const unsigned cap = eb->capacity();
      vars << "  " << nv(id, "cnt") << " : 0.." << cap << ";  -- " << n.name() << "\n";
      vars << "  " << nv(id, "anti") << " : 0..2;\n";
      defs << "  " << chv(out, "vf") << " := " << nv(id, "cnt") << " > 0;\n"
           << "  " << chv(out, "sb") << " := " << nv(id, "cnt") << " = 0 & "
           << nv(id, "anti") << " = 2;\n"
           << "  " << chv(in, "sf") << " := " << nv(id, "cnt") << " >= " << cap
           << ";\n"
           << "  " << chv(in, "vb") << " := " << nv(id, "anti") << " > 0;\n"
           << "  " << nv(id, "take") << " := " << chv(out, "vf") << " & (!"
           << chv(out, "sf") << " | " << chv(out, "vb") << ");\n"
           << "  " << nv(id, "put") << " := " << chv(in, "vf") << " & !"
           << chv(in, "sf") << " & !" << chv(in, "vb") << ";\n"
           << "  " << nv(id, "antiin") << " := " << chv(out, "vb") << " & !"
           << chv(out, "sb") << " & !" << chv(out, "vf") << ";\n"
           << "  " << nv(id, "antiuse") << " := " << chv(in, "vb") << " & ("
           << chv(in, "vf") << " | !" << chv(in, "sb") << ");\n";
      assigns << "  init(" << nv(id, "cnt") << ") := " << eb->initTokens().size()
              << ";\n"
              << "  next(" << nv(id, "cnt") << ") := case\n"
              << "    " << nv(id, "put") << " & !" << nv(id, "take") << " & !"
              << nv(id, "antiin") << " : " << nv(id, "cnt") << " + 1;\n"
              << "    !" << nv(id, "put") << " & " << nv(id, "take") << " : "
              << nv(id, "cnt") << " - 1;\n"
              << "    " << nv(id, "put") << " & " << nv(id, "antiin") << " : "
              << nv(id, "cnt") << ";  -- internal cancellation\n"
              << "    TRUE : " << nv(id, "cnt") << ";\n  esac;\n"
              << "  init(" << nv(id, "anti") << ") := 0;\n"
              << "  next(" << nv(id, "anti") << ") := case\n"
              << "    " << nv(id, "antiin") << " & !" << nv(id, "antiuse") << " & !"
              << nv(id, "put") << " : " << nv(id, "anti") << " + 1;\n"
              << "    !" << nv(id, "antiin") << " & " << nv(id, "antiuse") << " : "
              << nv(id, "anti") << " - 1;\n"
              << "    TRUE : " << nv(id, "anti") << ";\n  esac;\n";
    } else if (dynamic_cast<const ElasticBuffer0*>(&n) != nullptr) {
      const ChannelId in = n.input(0), out = n.output(0);
      vars << "  " << nv(id, "full") << " : boolean;  -- " << n.name() << "\n";
      defs << "  " << chv(out, "vf") << " := " << nv(id, "full") << ";\n"
           << "  " << nv(id, "leave") << " := " << nv(id, "full") << " & (!"
           << chv(out, "sf") << " | " << chv(out, "vb") << ");\n"
           << "  " << chv(in, "sf") << " := " << nv(id, "full") << " & !"
           << nv(id, "leave") << ";\n"
           << "  " << chv(in, "vb") << " := !" << nv(id, "full") << " & "
           << chv(out, "vb") << ";\n"
           << "  " << chv(out, "sb") << " := !" << nv(id, "full") << " & !"
           << chv(in, "vf") << " & " << chv(in, "sb") << ";\n";
      assigns << "  init(" << nv(id, "full") << ") := FALSE;\n"
              << "  next(" << nv(id, "full") << ") := case\n"
              << "    " << chv(in, "vf") << " & !" << chv(in, "sf") << " & !"
              << chv(in, "vb") << " : TRUE;\n"
              << "    " << nv(id, "leave") << " : FALSE;\n"
              << "    TRUE : " << nv(id, "full") << ";\n  esac;\n";
    } else if (const auto* fk = dynamic_cast<const ForkNode*>(&n)) {
      const ChannelId in = n.input(0);
      std::string allDone = chv(in, "vf");
      for (unsigned b = 0; b < fk->branches(); ++b) {
        const ChannelId br = n.output(b);
        vars << "  " << nv(id, "done" + std::to_string(b)) << " : boolean;\n";
        defs << "  " << chv(br, "vf") << " := " << chv(in, "vf") << " & !"
             << nv(id, "done" + std::to_string(b)) << ";\n"
             << "  " << chv(br, "sb") << " := !" << chv(br, "vf") << ";\n"
             << "  " << nv(id, "fin" + std::to_string(b)) << " := "
             << nv(id, "done" + std::to_string(b)) << " | (" << chv(br, "vf")
             << " & (!" << chv(br, "sf") << " | " << chv(br, "vb") << "));\n";
        allDone += " & " + nv(id, "fin" + std::to_string(b));
      }
      defs << "  " << nv(id, "alldone") << " := " << allDone << ";\n"
           << "  " << chv(in, "sf") << " := !" << nv(id, "alldone") << ";\n"
           << "  " << chv(in, "vb") << " := FALSE;\n";
      for (unsigned b = 0; b < fk->branches(); ++b) {
        const std::string d = nv(id, "done" + std::to_string(b));
        assigns << "  init(" << d << ") := FALSE;\n"
                << "  next(" << d << ") := case\n"
                << "    !" << chv(in, "vf") << " : " << d << ";\n"
                << "    " << nv(id, "alldone") << " : FALSE;\n"
                << "    TRUE : " << nv(id, "fin" + std::to_string(b)) << ";\n  esac;\n";
      }
    } else if (const auto* fn = dynamic_cast<const FuncNode*>(&n)) {
      const ChannelId out = n.output(0);
      std::string allIn = "TRUE", allCan = "TRUE";
      for (unsigned p = 0; p < fn->numInputs(); ++p) {
        allIn += " & " + chv(n.input(p), "vf");
        allCan += " & (" + chv(n.input(p), "vf") + " | !" + chv(n.input(p), "sb") + ")";
      }
      defs << "  " << nv(id, "allin") << " := " << allIn << ";\n"
           << "  " << nv(id, "allcan") << " := " << allCan << ";\n"
           << "  " << chv(out, "vf") << " := " << nv(id, "allin") << ";\n"
           << "  " << nv(id, "fire") << " := " << nv(id, "allin") << " & (!"
           << chv(out, "sf") << " | " << chv(out, "vb") << ");\n"
           << "  " << nv(id, "back") << " := " << chv(out, "vb") << " & !"
           << nv(id, "allin") << " & " << nv(id, "allcan") << ";\n"
           << "  " << chv(out, "sb") << " := !" << nv(id, "allin") << " & !"
           << nv(id, "allcan") << ";\n";
      for (unsigned p = 0; p < fn->numInputs(); ++p) {
        defs << "  " << chv(n.input(p), "vb") << " := " << nv(id, "back") << ";\n"
             << "  " << chv(n.input(p), "sf") << " := !" << nv(id, "fire") << " & !"
             << chv(n.input(p), "vb") << ";\n";
      }
    } else if (const auto* ee = dynamic_cast<const EarlyEvalMux*>(&n)) {
      // Control abstraction: the select VALUE is a free environment input.
      const ChannelId sel = ee->selectChannel(), out = n.output(0);
      vars << "  " << nv(id, "idx") << " : 0.." << (ee->dataInputs() - 1)
           << ";  -- abstracted select value\n";
      std::string usable = chv(sel, "vf") + " & (FALSE";
      for (unsigned d = 0; d < ee->dataInputs(); ++d) {
        vars << "  " << nv(id, "pend" + std::to_string(d)) << " : 0..3;\n";
        usable += " | (" + nv(id, "idx") + " = " + std::to_string(d) + " & " +
                  chv(ee->dataChannel(d), "vf") + " & " +
                  nv(id, "pend" + std::to_string(d)) + " = 0)";
      }
      usable += ")";
      defs << "  " << nv(id, "usable") << " := " << usable << ";\n"
           << "  " << chv(out, "vf") << " := " << nv(id, "usable") << ";\n"
           << "  " << chv(out, "sb") << " := !" << nv(id, "usable") << ";\n"
           << "  " << nv(id, "fire") << " := " << nv(id, "usable") << " & (!"
           << chv(out, "sf") << " | " << chv(out, "vb") << ");\n"
           << "  " << chv(sel, "sf") << " := !" << nv(id, "fire") << ";\n"
           << "  " << chv(sel, "vb") << " := FALSE;\n";
      for (unsigned d = 0; d < ee->dataInputs(); ++d) {
        const ChannelId ch = ee->dataChannel(d);
        const std::string pend = nv(id, "pend" + std::to_string(d));
        const std::string avail = nv(id, "avail" + std::to_string(d));
        defs << "  " << avail << " := " << pend << " + ((" << nv(id, "fire") << " & "
             << nv(id, "idx") << " != " << d << ") ? 1 : 0);\n"
             << "  " << chv(ch, "vb") << " := " << avail << " > 0;\n"
             << "  " << chv(ch, "sf") << " := " << chv(ch, "vb")
             << " ? FALSE : ((" << chv(sel, "vf") << " & " << nv(id, "idx") << " = "
             << d << ") ? !" << nv(id, "fire") << " : " << chv(ch, "vf") << ");\n";
        assigns << "  init(" << pend << ") := 0;\n"
                << "  next(" << pend << ") := case\n"
                << "    " << chv(ch, "vb") << " & (" << chv(ch, "vf") << " | !"
                << chv(ch, "sb") << ") : " << avail << " - 1;\n"
                << "    " << avail << " < 3 : " << avail << ";\n"
                << "    TRUE : 3;\n  esac;\n";
      }
      // Select value persists while the select token is held.
      assigns << "  next(" << nv(id, "idx") << ") := (" << chv(sel, "vf") << " & !"
              << nv(id, "fire") << ") ? " << nv(id, "idx") << " : {0"
              << (ee->dataInputs() > 1
                      ? ", " + std::to_string(ee->dataInputs() - 1)
                      : "")
              << "};\n";
    } else if (const auto* sh = dynamic_cast<const SharedModule*>(&n)) {
      // Unconstrained nondeterministic scheduler (§4.2 verifies against any
      // leads-to scheduler; fairness is left to FAIRNESS constraints below).
      vars << "  " << nv(id, "sched") << " : 0.." << (sh->channels() - 1)
           << ";  -- free scheduler of " << n.name() << "\n";
      for (unsigned c = 0; c < sh->channels(); ++c) {
        const ChannelId in = n.input(c), out = n.output(c);
        defs << "  " << chv(out, "vf") << " := " << nv(id, "sched") << " = " << c
             << " & " << chv(in, "vf") << ";\n"
             << "  " << chv(in, "vb") << " := " << chv(out, "vb") << ";\n"
             << "  " << chv(out, "sb") << " := !" << chv(in, "vf") << " & "
             << chv(in, "sb") << ";\n"
             << "  " << chv(in, "sf") << " := !" << chv(in, "vb") << " & (("
             << nv(id, "sched") << " = " << c << ") ? " << chv(out, "sf")
             << " : TRUE);\n";
      }
    } else if (dynamic_cast<const TokenSource*>(&n) != nullptr ||
               dynamic_cast<const NondetSource*>(&n) != nullptr) {
      const ChannelId out = n.output(0);
      vars << "  " << nv(id, "offer") << " : boolean;  -- env source " << n.name()
           << "\n";
      defs << "  " << chv(out, "vf") << " := " << nv(id, "offer") << ";\n"
           << "  " << chv(out, "sb") << " := FALSE;\n";
      assigns << "  init(" << nv(id, "offer") << ") := FALSE;\n"
              << "  next(" << nv(id, "offer") << ") := (" << chv(out, "vf") << " & "
              << chv(out, "sf") << " & !" << chv(out, "vb")
              << ") ? TRUE : {TRUE, FALSE};\n";
      specs << "FAIRNESS " << chv(out, "vf") << ";\n";
    } else if (dynamic_cast<const TokenSink*>(&n) != nullptr ||
               dynamic_cast<const NondetSink*>(&n) != nullptr) {
      const ChannelId in = n.input(0);
      vars << "  " << nv(id, "stop") << " : boolean;  -- env sink " << n.name() << "\n";
      defs << "  " << chv(in, "sf") << " := " << nv(id, "stop") << ";\n"
           << "  " << chv(in, "vb") << " := FALSE;\n";
      assigns << "  next(" << nv(id, "stop") << ") := {TRUE, FALSE};\n";
      specs << "FAIRNESS !" << chv(in, "sf") << ";\n";
    }
  }

  // §3.1 properties per channel.
  for (const ChannelId id : nl.channelIds()) {
    const std::string vf = chv(id, "vf"), sf = chv(id, "sf"), vb = chv(id, "vb"),
                      sb = chv(id, "sb");
    specs << "-- channel " << nl.channel(id).name << "\n";
    if (nl.channelIsPersistent(id))
      specs << "LTLSPEC G ((" << vf << " & " << sf << " & !" << vb << ") -> X " << vf
            << ")  -- Retry+\n";
    specs << "LTLSPEC G ((" << vb << " & " << sb << " & !" << vf << ") -> X " << vb
          << ")  -- Retry-\n"
          << "LTLSPEC G !(" << vf << " & " << sf << " & " << vb << ")  -- Invariant\n"
          << "LTLSPEC G !(" << vb << " & " << sb << " & " << vf << ")  -- Invariant-\n";
  }

  std::ostringstream os;
  os << "-- Generated by the elastic-speculation toolkit (DAC'09 reproduction).\n"
     << "-- Control-level abstraction: payload data omitted.\n"
     << "MODULE main\nVAR\n"
     << vars.str() << "DEFINE\n" << defs.str() << "ASSIGN\n" << assigns.str()
     << specs.str();
  return os.str();
}

}  // namespace esl::backend
