// BLIF netlist generation (paper §5: "a blif model for logic synthesis with
// SIS").
//
// Emits the elastic *control* network in Berkeley Logic Interchange Format:
// every channel's four handshake bits as nets, every controller as .names
// covers (sum-of-products) and .latch state bits, environments as model
// ports. Like the SIS flow the authors targeted, the model is control-only:
// payload datapaths are excluded, and data-derived control values (the
// early-evaluation mux select, the shared-module scheduler) become primary
// inputs of the model.
//
// Counters (EB occupancy, EB anti-tokens, mux pending anti-tokens) are
// emitted as binary-encoded state with exhaustively enumerated transition
// minterms, so the BLIF is exact with respect to the behavioural models.
#pragma once

#include <string>

#include "elastic/netlist.h"

namespace esl::backend {

/// Complete .model for the netlist's control skeleton.
/// Throws EslError for nodes without a BLIF template (e.g. StallingVLU) or
/// early-evaluation muxes with more than a 1-bit select.
std::string emitBlif(const Netlist& nl, const std::string& modelName = "elastic_ctrl");

}  // namespace esl::backend
