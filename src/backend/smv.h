// NuSMV model generation (paper §4.2 / §5: "generate ... a NuSMV model for
// verification").
//
// Emits a control-level abstraction of the netlist: payload data is omitted
// (protocol properties are data-independent), every channel's four handshake
// bits become DEFINEs over node state, every stateful controller contributes
// VAR/ASSIGN blocks, environments and schedulers are unconstrained
// nondeterministic inputs, and the §3.1 properties are emitted as LTLSPEC:
//   Retry+   G((vf & sf & !vb) -> X vf)
//   Retry-   G((vb & sb & !vf) -> X vb)
//   Invariant G!(vf & sf & vb) and G!(vb & sb & vf)
//   Liveness  G F (transfer | kill)  (under environment fairness)
//
// The built-in explicit-state checker (src/verify) proves the same properties
// natively; this emitter exists so the models can be replayed under NuSMV,
// as the authors did.
#pragma once

#include <string>

#include "elastic/netlist.h"

namespace esl::backend {

std::string emitSmv(const Netlist& nl);

}  // namespace esl::backend
