#include "backend/verilog.h"

#include <sstream>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/endpoints.h"
#include "elastic/fork.h"
#include "elastic/func.h"
#include "elastic/shared.h"

namespace esl::backend {

namespace {

/// Fixed library of behavioral controller modules (SELF protocol with
/// token counterflow). Widths are parameters; multi-way blocks are emitted
/// per arity by instLibrary().
const char* kLibraryHeader = R"(// ---------------------------------------------------------------------
// SELF elastic controller library (tokens + anti-token counterflow)
// Channel bundle: vf (V+), sf (S+), vb (V-), sb (S-), data.
// ---------------------------------------------------------------------

// Elastic buffer, Lf=1, Lb=1, C=2 (two latch ranks, Fig. 2a equivalent).
module esl_eb #(parameter WIDTH = 8, parameter INIT_TOKENS = 0) (
  input  wire             clk, rst_n,
  input  wire             in_vf,  output wire in_sf,
  output wire             in_vb,  input  wire in_sb,
  input  wire [WIDTH-1:0] in_data,
  output wire             out_vf, input  wire out_sf,
  input  wire             out_vb, output wire out_sb,
  output wire [WIDTH-1:0] out_data
);
  reg [WIDTH-1:0] slot0, slot1;
  reg [1:0]       count;     // tokens stored
  reg [1:0]       anti;      // anti-tokens stored
  assign out_vf   = count != 0;
  assign out_data = slot0;
  assign out_sb   = (count == 0) && (anti == 2);
  assign in_sf    = (count == 2);        // state-only: backward latency 1
  assign in_vb    = (anti != 0);
  wire out_take = out_vf && (!out_sf || out_vb);
  wire in_put   = in_vf && !in_sf && !in_vb;
  wire in_kill  = in_vf && in_vb;
  wire anti_in  = out_vb && !out_sb && !out_vf;
  wire anti_out = in_vb && !in_sb && !in_vf;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      count <= INIT_TOKENS[1:0]; anti <= 2'd0;
      slot0 <= {WIDTH{1'b0}};    slot1 <= {WIDTH{1'b0}};
    end else begin
      case ({out_take, in_put})
        2'b10: begin slot0 <= slot1; count <= count - 2'd1; end
        2'b01: begin
          if (count == 0) slot0 <= in_data; else slot1 <= in_data;
          count <= count + 2'd1;
        end
        2'b11: begin slot0 <= (count == 1) ? in_data : slot1;
                     if (count != 1) slot1 <= in_data; end
        default: ;
      endcase
      anti <= anti + (anti_in ? 2'd1 : 2'd0)
                   - ((in_kill || anti_out) ? 2'd1 : 2'd0);
    end
  end
endmodule

// Elastic buffer with zero backward latency, Lf=1, Lb=0, C=1 (Fig. 5).
module esl_eb0 #(parameter WIDTH = 8) (
  input  wire             clk, rst_n,
  input  wire             in_vf,  output wire in_sf,
  output wire             in_vb,  input  wire in_sb,
  input  wire [WIDTH-1:0] in_data,
  output wire             out_vf, input  wire out_sf,
  input  wire             out_vb, output wire out_sb,
  output wire [WIDTH-1:0] out_data
);
  reg             full;
  reg [WIDTH-1:0] slot;
  wire leave = full && (!out_sf || out_vb);
  assign out_vf   = full;
  assign out_data = slot;
  assign in_sf    = full && !leave;          // combinational stop (Lb=0)
  assign in_vb    = !full && out_vb;         // anti-token rushes through
  assign out_sb   = !full && !in_vf && in_sb;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin full <= 1'b0; slot <= {WIDTH{1'b0}}; end
    else begin
      if (leave) full <= 1'b0;
      if (in_vf && !in_sf && !in_vb) begin full <= 1'b1; slot <= in_data; end
    end
  end
endmodule
)";

std::string channelBundle(const Netlist& nl, ChannelId id) {
  std::ostringstream os;
  const Channel& ch = nl.channel(id);
  const std::string n = "ch" + std::to_string(id);
  os << "  wire " << n << "_vf, " << n << "_sf, " << n << "_vb, " << n << "_sb;\n";
  os << "  wire [" << (ch.width == 0 ? 0 : ch.width - 1) << ":0] " << n
     << "_data;  // " << ch.name << "\n";
  return os.str();
}

std::string bundle(ChannelId id) { return "ch" + std::to_string(id); }

/// Eager fork controller, emitted per arity.
std::string forkModule(unsigned ways) {
  std::ostringstream os;
  os << "module esl_fork" << ways << " #(parameter WIDTH = 8) (\n"
     << "  input  wire clk, rst_n,\n"
     << "  input  wire in_vf, output wire in_sf, input wire [WIDTH-1:0] in_data";
  for (unsigned i = 0; i < ways; ++i)
    os << ",\n  output wire o" << i << "_vf, input wire o" << i
       << "_sf, input wire o" << i << "_vb, output wire o" << i
       << "_sb, output wire [WIDTH-1:0] o" << i << "_data";
  os << "\n);\n";
  for (unsigned i = 0; i < ways; ++i) {
    os << "  reg done" << i << ";\n"
       << "  wire pend" << i << " = in_vf && !done" << i << ";\n"
       << "  assign o" << i << "_vf = pend" << i << ";\n"
       << "  assign o" << i << "_data = in_data;\n"
       << "  assign o" << i << "_sb = !pend" << i << ";\n"
       << "  wire fin" << i << " = done" << i << " || (o" << i << "_vf && (!o" << i
       << "_sf || o" << i << "_vb));\n";
  }
  os << "  wire all_done = in_vf";
  for (unsigned i = 0; i < ways; ++i) os << " && fin" << i;
  os << ";\n  assign in_sf = !all_done;\n"
     << "  always @(posedge clk or negedge rst_n)\n"
     << "    if (!rst_n) begin ";
  for (unsigned i = 0; i < ways; ++i) os << "done" << i << " <= 1'b0; ";
  os << "end\n    else if (in_vf) begin\n";
  for (unsigned i = 0; i < ways; ++i)
    os << "      done" << i << " <= all_done ? 1'b0 : fin" << i << ";\n";
  os << "    end\nendmodule\n\n";
  return os.str();
}

/// Join / function-shell controller, emitted per arity. The datapath hook is
/// an identity stub on input 0 (marker comment for the synthesized function).
std::string joinModule(unsigned arity) {
  std::ostringstream os;
  os << "module esl_join" << arity
     << " #(parameter WIDTH = 8, parameter OWIDTH = 8) (\n  input wire clk, rst_n";
  for (unsigned i = 0; i < arity; ++i)
    os << ",\n  input wire i" << i << "_vf, output wire i" << i << "_sf, output wire i"
       << i << "_vb, input wire i" << i << "_sb, input wire [WIDTH-1:0] i" << i
       << "_data";
  os << ",\n  output wire out_vf, input wire out_sf, input wire out_vb,"
     << " output wire out_sb, output wire [OWIDTH-1:0] out_data\n);\n";
  os << "  wire all_in = 1'b1";
  for (unsigned i = 0; i < arity; ++i) os << " && i" << i << "_vf";
  os << ";\n  assign out_vf = all_in;\n"
     << "  // DATAPATH STUB: splice the synthesized function here.\n"
     << "  assign out_data = i0_data[OWIDTH-1:0];\n"
     << "  wire fire = all_in && (!out_sf || out_vb);\n"
     << "  wire all_can = 1'b1";
  for (unsigned i = 0; i < arity; ++i)
    os << " && (i" << i << "_vf || !i" << i << "_sb)";
  os << ";\n  wire back = out_vb && !all_in && all_can;\n";
  for (unsigned i = 0; i < arity; ++i)
    os << "  assign i" << i << "_vb = back;\n"
       << "  assign i" << i << "_sf = !fire && !i" << i << "_vb;\n";
  os << "  assign out_sb = !all_in && !all_can;\nendmodule\n\n";
  return os.str();
}

/// Early-evaluation mux controller, emitted per data-arity.
std::string eeMuxModule(unsigned dataInputs) {
  std::ostringstream os;
  os << "module esl_eemux" << dataInputs
     << " #(parameter WIDTH = 8, parameter SELW = 1) (\n  input wire clk, rst_n,\n"
     << "  input wire sel_vf, output wire sel_sf, input wire [SELW-1:0] sel_data";
  for (unsigned i = 0; i < dataInputs; ++i)
    os << ",\n  input wire d" << i << "_vf, output wire d" << i << "_sf, output wire d"
       << i << "_vb, input wire d" << i << "_sb, input wire [WIDTH-1:0] d" << i
       << "_data";
  os << ",\n  output wire out_vf, input wire out_sf, input wire out_vb,"
     << " output wire out_sb, output wire [WIDTH-1:0] out_data\n);\n";
  for (unsigned i = 0; i < dataInputs; ++i) os << "  reg [1:0] pend" << i << ";\n";
  os << "  wire [SELW-1:0] idx = sel_data;\n";
  os << "  wire sel_ok = sel_vf;\n  wire usable = sel_ok";
  os << " && (";
  for (unsigned i = 0; i < dataInputs; ++i) {
    if (i != 0) os << " || ";
    os << "(idx == " << i << " && d" << i << "_vf && pend" << i << " == 0)";
  }
  os << ");\n  assign out_vf = usable;\n  assign out_sb = !usable;\n";
  os << "  assign out_data = ";
  for (unsigned i = 0; i + 1 < dataInputs; ++i)
    os << "(idx == " << i << ") ? d" << i << "_data : ";
  os << "d" << (dataInputs - 1) << "_data;\n";
  os << "  wire fire = usable && (!out_sf || out_vb);\n"
     << "  assign sel_sf = !fire;\n";
  for (unsigned i = 0; i < dataInputs; ++i) {
    os << "  wire [1:0] avail" << i << " = pend" << i
       << " + ((fire && idx != " << i << ") ? 2'd1 : 2'd0);\n"
       << "  assign d" << i << "_vb = avail" << i << " != 0;\n"
       << "  assign d" << i << "_sf = d" << i << "_vb ? 1'b0 :\n"
       << "    (sel_ok && idx == " << i << ") ? !fire : d" << i << "_vf;\n";
  }
  os << "  always @(posedge clk or negedge rst_n)\n    if (!rst_n) begin ";
  for (unsigned i = 0; i < dataInputs; ++i) os << "pend" << i << " <= 2'd0; ";
  os << "end\n    else begin\n";
  for (unsigned i = 0; i < dataInputs; ++i)
    os << "      pend" << i << " <= avail" << i << " - ((d" << i << "_vb && (d" << i
       << "_vf || !d" << i << "_sb)) ? 2'd1 : 2'd0);\n";
  os << "    end\nendmodule\n\n";
  return os.str();
}

/// Shared-module controller (Fig. 4b), emitted per arity. The scheduler is a
/// port (sched) so any prediction logic can be attached.
std::string sharedModule(unsigned channels) {
  std::ostringstream os;
  const unsigned selW = channels <= 2 ? 1 : logic::clog2(channels);
  os << "module esl_shared" << channels
     << " #(parameter WIDTH = 8, parameter OWIDTH = 8) (\n"
     << "  input wire clk, rst_n,\n  input wire [" << (selW - 1) << ":0] sched";
  for (unsigned i = 0; i < channels; ++i)
    os << ",\n  input wire i" << i << "_vf, output wire i" << i << "_sf, output wire i"
       << i << "_vb, input wire i" << i << "_sb, input wire [WIDTH-1:0] i" << i
       << "_data,\n  output wire o" << i << "_vf, input wire o" << i
       << "_sf, input wire o" << i << "_vb, output wire o" << i
       << "_sb, output wire [OWIDTH-1:0] o" << i << "_data";
  os << "\n);\n";
  for (unsigned i = 0; i < channels; ++i) {
    os << "  assign o" << i << "_vf = (sched == " << i << ") && i" << i << "_vf;\n"
       << "  // DATAPATH STUB: input mux + shared function F.\n"
       << "  assign o" << i << "_data = i" << i << "_data[OWIDTH-1:0];\n"
       << "  assign i" << i << "_vb = o" << i << "_vb;\n"
       << "  assign o" << i << "_sb = !i" << i << "_vf && i" << i << "_sb;\n"
       << "  assign i" << i << "_sf = !i" << i << "_vb && ((sched == " << i
       << ") ? o" << i << "_sf : 1'b1);\n";
  }
  os << "endmodule\n\n";
  return os.str();
}

}  // namespace

std::string emitVerilog(const Netlist& nl, const std::string& topName) {
  std::ostringstream os;
  os << "// Generated by the elastic-speculation toolkit (DAC'09 reproduction).\n"
     << kLibraryHeader << "\n";

  // Emit arity-specific modules once each.
  std::vector<bool> forkEmitted(16, false), joinEmitted(16, false),
      eeEmitted(16, false), sharedEmitted(16, false);
  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);
    if (const auto* f = dynamic_cast<const ForkNode*>(&n)) {
      if (!forkEmitted.at(f->branches())) {
        os << forkModule(f->branches());
        forkEmitted[f->branches()] = true;
      }
    } else if (const auto* fn = dynamic_cast<const FuncNode*>(&n)) {
      if (!joinEmitted.at(fn->numInputs())) {
        os << joinModule(fn->numInputs());
        joinEmitted[fn->numInputs()] = true;
      }
    } else if (const auto* ee = dynamic_cast<const EarlyEvalMux*>(&n)) {
      if (!eeEmitted.at(ee->dataInputs())) {
        os << eeMuxModule(ee->dataInputs());
        eeEmitted[ee->dataInputs()] = true;
      }
    } else if (const auto* sh = dynamic_cast<const SharedModule*>(&n)) {
      if (!sharedEmitted.at(sh->channels())) {
        os << sharedModule(sh->channels());
        sharedEmitted[sh->channels()] = true;
      }
    }
  }

  os << "module " << topName << " (\n  input wire clk,\n  input wire rst_n";
  // Environment nodes become top-level ports.
  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);
    const bool isSource = dynamic_cast<const TokenSource*>(&n) != nullptr ||
                          dynamic_cast<const NondetSource*>(&n) != nullptr;
    const bool isSink = dynamic_cast<const TokenSink*>(&n) != nullptr ||
                        dynamic_cast<const NondetSink*>(&n) != nullptr;
    if (isSource) {
      const ChannelId ch = n.output(0);
      const unsigned w = nl.channel(ch).width;
      os << ",\n  input wire " << n.name() << "_vf, output wire " << n.name()
         << "_sf, input wire [" << (w == 0 ? 0 : w - 1) << ":0] " << n.name()
         << "_data";
    } else if (isSink) {
      const ChannelId ch = n.input(0);
      const unsigned w = nl.channel(ch).width;
      os << ",\n  output wire " << n.name() << "_vf, input wire " << n.name()
         << "_sf, output wire [" << (w == 0 ? 0 : w - 1) << ":0] " << n.name()
         << "_data";
    }
  }
  os << "\n);\n\n";

  for (const ChannelId id : nl.channelIds()) os << channelBundle(nl, id);
  os << "\n";

  for (const NodeId id : nl.nodeIds()) {
    const Node& n = nl.node(id);
    const std::string inst = "u_" + std::to_string(id);
    if (const auto* eb = dynamic_cast<const ElasticBuffer*>(&n)) {
      const std::string i = bundle(n.input(0)), o = bundle(n.output(0));
      os << "  esl_eb #(.WIDTH(" << eb->width() << "), .INIT_TOKENS("
         << eb->initTokens().size() << ")) " << inst << " (.clk(clk), .rst_n(rst_n),\n"
         << "    .in_vf(" << i << "_vf), .in_sf(" << i << "_sf), .in_vb(" << i
         << "_vb), .in_sb(" << i << "_sb), .in_data(" << i << "_data),\n"
         << "    .out_vf(" << o << "_vf), .out_sf(" << o << "_sf), .out_vb(" << o
         << "_vb), .out_sb(" << o << "_sb), .out_data(" << o << "_data));  // "
         << n.name() << "\n";
    } else if (const auto* eb0 = dynamic_cast<const ElasticBuffer0*>(&n)) {
      const std::string i = bundle(n.input(0)), o = bundle(n.output(0));
      os << "  esl_eb0 #(.WIDTH(" << eb0->width() << ")) " << inst
         << " (.clk(clk), .rst_n(rst_n),\n"
         << "    .in_vf(" << i << "_vf), .in_sf(" << i << "_sf), .in_vb(" << i
         << "_vb), .in_sb(" << i << "_sb), .in_data(" << i << "_data),\n"
         << "    .out_vf(" << o << "_vf), .out_sf(" << o << "_sf), .out_vb(" << o
         << "_vb), .out_sb(" << o << "_sb), .out_data(" << o << "_data));  // "
         << n.name() << "\n";
    } else if (const auto* fk = dynamic_cast<const ForkNode*>(&n)) {
      const std::string i = bundle(n.input(0));
      os << "  esl_fork" << fk->branches() << " #(.WIDTH("
         << nl.channel(n.input(0)).width << ")) " << inst
         << " (.clk(clk), .rst_n(rst_n),\n    .in_vf(" << i << "_vf), .in_sf(" << i
         << "_sf), .in_data(" << i << "_data)";
      for (unsigned b = 0; b < fk->branches(); ++b) {
        const std::string o = bundle(n.output(b));
        os << ",\n    .o" << b << "_vf(" << o << "_vf), .o" << b << "_sf(" << o
           << "_sf), .o" << b << "_vb(" << o << "_vb), .o" << b << "_sb(" << o
           << "_sb), .o" << b << "_data(" << o << "_data)";
      }
      os << ");  // " << n.name() << "\n";
    } else if (const auto* fn = dynamic_cast<const FuncNode*>(&n)) {
      os << "  esl_join" << fn->numInputs() << " #(.WIDTH("
         << nl.channel(n.input(0)).width << "), .OWIDTH("
         << nl.channel(n.output(0)).width << ")) " << inst
         << " (.clk(clk), .rst_n(rst_n)";
      for (unsigned p = 0; p < fn->numInputs(); ++p) {
        const std::string i = bundle(n.input(p));
        os << ",\n    .i" << p << "_vf(" << i << "_vf), .i" << p << "_sf(" << i
           << "_sf), .i" << p << "_vb(" << i << "_vb), .i" << p << "_sb(" << i
           << "_sb), .i" << p << "_data(" << i << "_data)";
      }
      const std::string o = bundle(n.output(0));
      os << ",\n    .out_vf(" << o << "_vf), .out_sf(" << o << "_sf), .out_vb(" << o
         << "_vb), .out_sb(" << o << "_sb), .out_data(" << o << "_data));  // "
         << n.name() << "\n";
    } else if (const auto* ee = dynamic_cast<const EarlyEvalMux*>(&n)) {
      const std::string s = bundle(ee->selectChannel());
      os << "  esl_eemux" << ee->dataInputs() << " #(.WIDTH("
         << nl.channel(n.output(0)).width << "), .SELW("
         << nl.channel(ee->selectChannel()).width << ")) " << inst
         << " (.clk(clk), .rst_n(rst_n),\n    .sel_vf(" << s << "_vf), .sel_sf(" << s
         << "_sf), .sel_data(" << s << "_data)";
      for (unsigned d = 0; d < ee->dataInputs(); ++d) {
        const std::string i = bundle(ee->dataChannel(d));
        os << ",\n    .d" << d << "_vf(" << i << "_vf), .d" << d << "_sf(" << i
           << "_sf), .d" << d << "_vb(" << i << "_vb), .d" << d << "_sb(" << i
           << "_sb), .d" << d << "_data(" << i << "_data)";
      }
      const std::string o = bundle(n.output(0));
      os << ",\n    .out_vf(" << o << "_vf), .out_sf(" << o << "_sf), .out_vb(" << o
         << "_vb), .out_sb(" << o << "_sb), .out_data(" << o << "_data));  // "
         << n.name() << "\n";
    } else if (const auto* sh = dynamic_cast<const SharedModule*>(&n)) {
      os << "  // scheduler '" << sh->name()
         << "': attach prediction logic to the sched port\n";
      os << "  esl_shared" << sh->channels() << " #(.WIDTH("
         << nl.channel(n.input(0)).width << "), .OWIDTH("
         << nl.channel(n.output(0)).width << ")) " << inst
         << " (.clk(clk), .rst_n(rst_n), .sched(1'b0 /* scheduler */)";
      for (unsigned c = 0; c < sh->channels(); ++c) {
        const std::string i = bundle(n.input(c));
        const std::string o = bundle(n.output(c));
        os << ",\n    .i" << c << "_vf(" << i << "_vf), .i" << c << "_sf(" << i
           << "_sf), .i" << c << "_vb(" << i << "_vb), .i" << c << "_sb(" << i
           << "_sb), .i" << c << "_data(" << i << "_data),\n    .o" << c << "_vf("
           << o << "_vf), .o" << c << "_sf(" << o << "_sf), .o" << c << "_vb(" << o
           << "_vb), .o" << c << "_sb(" << o << "_sb), .o" << c << "_data(" << o
           << "_data)";
      }
      os << ");  // " << n.name() << "\n";
    } else if (dynamic_cast<const TokenSource*>(&n) != nullptr ||
               dynamic_cast<const NondetSource*>(&n) != nullptr) {
      const std::string o = bundle(n.output(0));
      os << "  // environment source " << n.name() << "\n"
         << "  assign " << o << "_vf = " << n.name() << "_vf;\n"
         << "  assign " << o << "_data = " << n.name() << "_data;\n"
         << "  assign " << n.name() << "_sf = " << o << "_sf;\n"
         << "  assign " << o << "_sb = 1'b0;\n";
    } else if (dynamic_cast<const TokenSink*>(&n) != nullptr ||
               dynamic_cast<const NondetSink*>(&n) != nullptr) {
      const std::string i = bundle(n.input(0));
      os << "  // environment sink " << n.name() << "\n"
         << "  assign " << n.name() << "_vf = " << i << "_vf;\n"
         << "  assign " << n.name() << "_data = " << i << "_data;\n"
         << "  assign " << i << "_sf = " << n.name() << "_sf;\n"
         << "  assign " << i << "_vb = 1'b0;\n";
    } else {
      os << "  // node " << n.name() << " (" << n.kindName()
         << "): no Verilog template\n";
    }
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace esl::backend
