// Verilog netlist generation.
//
// The paper's framework "can generate a Verilog netlist of the elastic
// controller ... assembling a set of predefined parameterized control circuit
// primitives". This emitter reproduces that artifact: a library of behavioral
// controller modules (elastic buffer, zero-backward-latency buffer, eager
// fork, join/function shell, early-evaluation mux, shared-module controller)
// plus one top module instantiating them per the netlist, with every channel
// as a (valid+, stop+, valid-, stop-, data) wire bundle.
//
// Datapath functions are C++ lambdas and cannot be translated; they are
// emitted as identity stubs with a marker comment, exactly where a real flow
// would splice the synthesized function (the paper connects hand-written
// datapath Verilog the same way).
#pragma once

#include <string>

#include "elastic/netlist.h"

namespace esl::backend {

/// Complete self-contained Verilog source for the netlist's control skeleton.
std::string emitVerilog(const Netlist& nl, const std::string& topName = "elastic_top");

}  // namespace esl::backend
