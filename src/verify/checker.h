// Explicit-state model checker for elastic controllers (paper §4.2).
//
// The paper verifies its controllers with NuSMV/SMV; controllers composed
// with nondeterministic environments are small FSMs, so this repo checks the
// same property classes by explicit enumeration:
//   * reachability over (node state) x (environment choice bits),
//   * safety properties on settled signals (the SELF Invariant),
//   * step properties  G(p => X q)      (Retry+ / Retry-),
//   * recurrence       G F p            (Liveness),
//   * leads-to         G(p => F q)      (scheduler property, eq. 1),
//   * "a transfer stays reachable from every state" (deadlock freedom).
//
// Labels are predicates over the settled signals of one transition; each
// explored edge stores a label bitset, packed as ceil(labels/64) words per
// edge — the old single-uint64 mask capped the SELF suite (5 labels per
// channel + progress) at ~12-channel netlists, which is exactly what kept the
// synth families verified at <=8 nodes.
//
// Exploration can be sharded across worker lanes (CheckerOptions::workers):
// the BFS runs level-synchronously, each level's states expand in parallel on
// per-lane netlist replicas (built from a NetlistRecipe — netlists carry
// mutable node state and are not shareable across threads), successors are
// probed against a striped visited-set keyed on the canonical state hash, and
// a single-threaded merge interns fresh states in exactly the serial BFS
// discovery order. The result — state numbering, transition counts, label
// bitmasks, truncation point, counterexample traces — is bit-identical to the
// serial checker for every worker count.
//
// Violated properties come back as Violation records carrying a replayable
// counterexample: the choice-combo path from reset to the witness (plus, for
// liveness-class properties, the lasso that avoids the goal forever). Traces
// are re-derived by a serial replay of the shortest offending path, so
// diagnostics are stable regardless of how the graph was explored.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "elastic/context.h"
#include "elastic/registry.h"
#include "verify/state_index.h"

namespace esl::verify {

/// DEPRECATED shim: an opaque closure building a fresh netlist instance.
/// Must be pure: every call returns a bit-identical netlist (same nodes, ids,
/// channels, initial state). Prefer NetlistSpec — the data form can be named,
/// printed to `.esl`, diffed and handed to tools, and spec.build() satisfies
/// the purity contract by construction (patterns::designSpec, synth::spec).
/// Required shape for workers != 1, where each lane explores on its own
/// replica; the spec overloads wrap themselves in one of these internally.
using NetlistRecipe = std::function<Netlist()>;

struct CheckerOptions {
  std::size_t maxStates = 100000;
  std::size_t maxChoiceBits = 14;  ///< refuse to enumerate beyond 2^14 per state
  /// BFS worker lanes: 1 = serial; 0 = one lane per hardware thread; values
  /// other than 1 require a recipe-constructed checker. Results are
  /// bit-identical for every setting.
  unsigned workers = 1;
};

/// Outcome of one reachable-state enumeration. Shared by ModelChecker and the
/// protocol-suite reports (it used to be duplicated between them).
struct ExploreResult {
  std::size_t states = 0;
  std::size_t transitions = 0;
  bool truncated = false;
};

/// One refuted — or, on a truncated graph, un-certifiable — property.
struct Violation {
  static constexpr std::size_t kNoLasso = ~std::size_t{0};

  std::string property;    ///< the formula, e.g. "G(up.retryF => X up.vf)"
  std::string diagnostic;  ///< human-readable cause
  /// True when exploration was truncated and the property is liveness-class:
  /// a partial graph can neither certify nor refute it, so this entry means
  /// "raise maxStates", not "controller broken". No counterexample attached.
  bool inconclusive = false;

  /// Counterexample trace, replayable from reset: taking choice combo
  /// combos[i] in state states[i] reaches states[i+1]. states.front() is the
  /// initial state (id 0); states.size() == combos.size() + 1. For
  /// recurrence/leads-to violations the suffix starting at index lassoStart
  /// is a cycle the run can repeat forever; kNoLasso for finite witnesses.
  std::vector<std::uint64_t> combos;
  std::vector<std::uint32_t> states;
  std::size_t lassoStart = kNoLasso;

  std::string str() const {
    return property + ": " + diagnostic;
  }
};

using LabelFn = std::function<bool(const SimContext&)>;

class ModelChecker {
 public:
  /// Serial checker over a borrowed netlist (workers must stay 1).
  explicit ModelChecker(Netlist& netlist, CheckerOptions options = {});
  /// Spec-owned checker: builds its primary netlist (and, when workers != 1,
  /// one replica per additional lane) from the serializable IR. This is the
  /// primary parallel-checking entry point — a parsed `.esl` design checks
  /// exactly like a C++-built one.
  explicit ModelChecker(NetlistSpec spec, CheckerOptions options = {});
  /// Deprecated closure shim (see NetlistRecipe).
  explicit ModelChecker(NetlistRecipe recipe, CheckerOptions options = {});
  ~ModelChecker();

  /// The primary netlist the checker explores (recipe-built or borrowed).
  Netlist& netlist() { return netlist_; }

  /// Registers a labelled predicate; returns its index. Register every label
  /// before explore() — the explored graph only stores bits for labels that
  /// existed then, and the property checks refuse later additions. Under
  /// workers != 1 the predicate runs concurrently on all lanes (each with its
  /// own SimContext), so it must not capture shared mutable state.
  unsigned addLabel(std::string name, LabelFn fn);

  /// BFS over the full reachable state space.
  ExploreResult explore();

  // --- property checks on the explored graph (call after explore()) ---------
  //
  // No check certifies a truncated graph: the safety checks (never/step)
  // still report a violation found in the explored prefix — that much is
  // real — but a clean prefix comes back `inconclusive`, and the
  // liveness-class checks (whose fixpoints are wrong in both directions on a
  // partial graph) refuse up front.

  /// G !p — returns a violation if any edge satisfies `label`.
  std::optional<Violation> checkNever(const std::string& label) const;

  /// G(p => X q) — after an edge with p, every next edge must have q.
  std::optional<Violation> checkStep(const std::string& p,
                                     const std::string& q) const;

  /// G F p — no reachable cycle may avoid p forever.
  std::optional<Violation> checkRecurrence(const std::string& p) const;

  /// G(p => F q) — after any p-edge without q, q must be unavoidable.
  std::optional<Violation> checkLeadsTo(const std::string& p,
                                        const std::string& q) const;

  /// From every reachable state some p-edge must remain reachable.
  std::optional<Violation> checkAlwaysReachable(const std::string& p) const;

  std::size_t stateCount() const { return states_.size(); }
  bool truncated() const { return truncated_; }

  /// Order-sensitive hash of the entire explored graph — state bytes, edges,
  /// label masks, discovery parents, truncation. Equal fingerprints mean the
  /// parallel and serial explorations produced the same object.
  std::uint64_t graphFingerprint() const;

  /// Serially re-runs a violation's counterexample from reset, checking every
  /// step lands on the recorded state (InternalError otherwise — this guards
  /// the parallel merge as much as the trace construction).
  void replay(const Violation& v);

 private:
  struct Replica;
  struct SuccessorRec {
    std::uint64_t hash = 0;
    std::uint32_t known = kNoState;     ///< probe hit during expansion
    std::vector<std::uint8_t> bytes;    ///< filled only when unknown
  };

  std::size_t comboCount() const;
  void precomputeCombos();
  /// Appends a fresh state (bytes must be new); returns its id.
  std::uint32_t internFresh(std::uint64_t hash, std::vector<std::uint8_t> bytes,
                            std::uint32_t parent, std::uint32_t parentCombo);
  /// One transition on `ctx` from the packed state `from` under `combo`;
  /// leaves the successor bytes in `scratch` and appends labelWords_ words of
  /// evaluated label bits to `labelsOut`.
  void stepOnce(SimContext& ctx, const std::vector<std::uint8_t>& from,
                std::size_t combo, std::vector<std::uint8_t>& scratch,
                std::vector<std::uint64_t>& labelsOut);
  void exploreSerial();
  void exploreParallel();
  void ensureReplicas(unsigned workers);

  /// Index of `name` for graph queries; throws unless the label was already
  /// registered when the last explore() ran (its bits exist in the graph).
  unsigned labelIndex(const std::string& name) const;
  /// Label bit of the explored edge (state `s`, choice combo `combo`).
  bool edgeHasLabel(std::uint32_t s, std::size_t combo, unsigned label) const {
    return (labels_[s][combo * labelWords_ + label / 64] >> (label % 64)) & 1;
  }
  std::uint32_t edgeTo(std::uint32_t s, std::size_t combo) const {
    return edges_[s][combo];
  }
  std::size_t edgeCount(std::uint32_t s) const { return edges_[s].size(); }
  /// States with an infinite path using only edges without the `avoid` label.
  std::vector<bool> canAvoidForever(unsigned avoidLabel) const;

  /// Inconclusive violation for liveness-class properties on truncated graphs.
  std::optional<Violation> refuseIfTruncated(const std::string& property) const;
  /// Fills v.states/v.combos with the discovery path from the initial state
  /// to `s` (each step is the state's first-discovery edge — the shortest
  /// BFS path, identical for every worker count).
  void tracePathTo(Violation& v, std::uint32_t s) const;
  /// Appends the explored edge `combo` out of the trace's last state.
  void traceEdge(Violation& v, std::uint32_t combo) const;
  /// Appends a cycle that stays inside the avoid-subgraph forever.
  void traceLasso(Violation& v, unsigned avoidLabel,
                  const std::vector<bool>& can) const;

  NetlistRecipe recipe_;                    ///< empty for borrowed netlists
  std::unique_ptr<Netlist> ownedNetlist_;   ///< set when recipe-built
  Netlist& netlist_;
  CheckerOptions options_;
  SimContext ctx_;
  std::vector<std::string> labelNames_;
  std::vector<LabelFn> labelFns_;

  // Explored graph; identical for every worker count. Successor ids are
  // indexed [state][combo]; label bits are stride-packed per state as
  // combo * labelWords_ words (labelWords_ = ceil(labels/64)).
  std::vector<std::vector<std::uint8_t>> states_;   ///< packed bytes by id
  std::vector<std::vector<std::uint32_t>> edges_;   ///< successor per combo
  std::vector<std::vector<std::uint64_t>> labels_;  ///< label words per edge
  std::vector<std::uint32_t> parentState_;          ///< first-discovery parent
  std::vector<std::uint32_t> parentCombo_;          ///< combo taken from parent
  std::size_t labelWords_ = 1;
  std::size_t exploredLabels_ = 0;  ///< label count when explore() last ran
  std::size_t transitions_ = 0;
  bool truncated_ = false;

  StateIndex index_;
  std::vector<std::vector<bool>> comboBits_;  ///< choice bits per combo
  std::vector<std::uint8_t> packScratch_;
  std::vector<std::unique_ptr<Replica>> replicas_;  ///< lanes 1..workers-1
};

// ---------------------------------------------------------------------------
// SELF protocol suite (paper §3.1 + §4.2) over a whole netlist
// ---------------------------------------------------------------------------

struct ProtocolReport {
  ExploreResult explore;
  std::vector<Violation> violations;
  std::size_t propertiesChecked = 0;
  bool ok() const { return violations.empty(); }
  /// First violation's one-line description ("" when ok).
  std::string firstViolation() const {
    return violations.empty() ? std::string() : violations.front().str();
  }
};

/// Exploration limits plus the property toggles: the suite options ARE
/// checker options, so limits are set once instead of plumbed through a
/// nested copy (the old `options.checker.maxStates` spelling).
struct ProtocolSuiteOptions : CheckerOptions {
  bool checkLiveness = true;      ///< G F progress (needs fair environments)
  bool checkDeadlock = true;      ///< progress always reachable
  bool checkPersistence = true;   ///< Retry+/Retry- per channel
};

/// Runs the full §3.1 property set on every channel of the netlist:
/// Invariant (kill/stop exclusion), Retry+/Retry- (skipped on channels whose
/// producer is exempt, §4.2), global liveness and deadlock freedom.
ProtocolReport checkSelfProtocol(Netlist& netlist, ProtocolSuiteOptions options = {});
/// Spec overload — the form to use when options.workers != 1.
ProtocolReport checkSelfProtocol(const NetlistSpec& spec,
                                 ProtocolSuiteOptions options = {});
/// Deprecated closure shim.
ProtocolReport checkSelfProtocol(const NetlistRecipe& recipe,
                                 ProtocolSuiteOptions options = {});

/// The leads-to property of eq. (1) for each input channel of a shared
/// module: a valid input token is eventually served or killed.
ProtocolReport checkSchedulerLeadsTo(Netlist& netlist, NodeId sharedModule,
                                     ProtocolSuiteOptions options = {});
/// Spec overload — `sharedModule` is the node id in the rebuilt netlist
/// (specs build deterministically, so ids are stable across instances).
ProtocolReport checkSchedulerLeadsTo(const NetlistSpec& spec, NodeId sharedModule,
                                     ProtocolSuiteOptions options = {});
/// Deprecated closure shim.
ProtocolReport checkSchedulerLeadsTo(const NetlistRecipe& recipe,
                                     NodeId sharedModule,
                                     ProtocolSuiteOptions options = {});

// ---------------------------------------------------------------------------
// Suite farm: independent verification jobs across a worker pool
// ---------------------------------------------------------------------------

/// One verification job: a netlist IR plus the property toggles. When
/// sharedModule is set, the eq. (1) scheduler suite runs after the SELF suite
/// and its findings are merged into the same report. `spec` is the primary
/// form; the closure `recipe` remains as a deprecated shim and is used only
/// when the spec is empty.
struct SuiteJob {
  std::string name;
  NetlistSpec spec;
  NetlistRecipe recipe;  ///< deprecated shim, consulted when spec is empty
  ProtocolSuiteOptions options = {};
  NodeId sharedModule = kNoNode;
};

struct SuiteFarmResult {
  std::string name;
  ProtocolReport report;
  std::string error;  ///< exception text when the job itself blew up
  bool ok() const { return error.empty() && report.ok(); }
};

/// Runs every job on `threads` lanes (0 = hardware concurrency) and returns
/// results in job order — the suite-level counterpart of frontier sharding:
/// independent properties/configs (e.g. the synth families) verify
/// concurrently, so larger instances fit the same wall-clock budget.
std::vector<SuiteFarmResult> runSuiteFarm(const std::vector<SuiteJob>& jobs,
                                          unsigned threads = 0);

}  // namespace esl::verify
