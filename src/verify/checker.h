// Explicit-state model checker for elastic controllers (paper §4.2).
//
// The paper verifies its controllers with NuSMV/SMV; controllers composed
// with nondeterministic environments are small FSMs, so this repo checks the
// same property classes by explicit enumeration:
//   * reachability over (node state) x (environment choice bits),
//   * safety properties on settled signals (the SELF Invariant),
//   * step properties  G(p => X q)      (Retry+ / Retry-),
//   * recurrence       G F p            (Liveness),
//   * leads-to         G(p => F q)      (scheduler property, eq. 1),
//   * "a transfer stays reachable from every state" (deadlock freedom).
//
// Labels are predicates over the settled signals of one transition; each
// explored edge stores a label bitmask (up to 64 labels).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "elastic/context.h"

namespace esl::verify {

struct CheckerOptions {
  std::size_t maxStates = 100000;
  std::size_t maxChoiceBits = 14;  ///< refuse to enumerate beyond 2^14 per state
};

/// Outcome of one reachable-state enumeration. Shared by ModelChecker and the
/// protocol-suite reports (it used to be duplicated between them).
struct ExploreResult {
  std::size_t states = 0;
  std::size_t transitions = 0;
  bool truncated = false;
};

using LabelFn = std::function<bool(const SimContext&)>;

class ModelChecker {
 public:
  explicit ModelChecker(Netlist& netlist, CheckerOptions options = {});

  /// Registers a labelled predicate; returns its index (max 64).
  unsigned addLabel(std::string name, LabelFn fn);

  /// BFS over the full reachable state space.
  ExploreResult explore();

  // --- property checks on the explored graph (call after explore()) ---------

  /// G !p — returns a diagnostic if any edge satisfies `label`.
  std::optional<std::string> checkNever(const std::string& label) const;

  /// G(p => X q) — after an edge with p, every next edge must have q.
  std::optional<std::string> checkStep(const std::string& p, const std::string& q) const;

  /// G F p — no reachable cycle may avoid p forever.
  std::optional<std::string> checkRecurrence(const std::string& p) const;

  /// G(p => F q) — after any p-edge without q, q must be unavoidable.
  std::optional<std::string> checkLeadsTo(const std::string& p,
                                          const std::string& q) const;

  /// From every reachable state some p-edge must remain reachable.
  std::optional<std::string> checkAlwaysReachable(const std::string& p) const;

  std::size_t stateCount() const { return edges_.size(); }

 private:
  struct Edge {
    std::uint32_t to;
    std::uint64_t labels;
  };

  unsigned labelIndex(const std::string& name) const;
  std::uint64_t labelMask(const std::string& name) const {
    return 1ULL << labelIndex(name);
  }
  /// States with an infinite path using only edges without `avoid` labels.
  std::vector<bool> canAvoidForever(std::uint64_t avoidMask) const;

  Netlist& netlist_;
  CheckerOptions options_;
  SimContext ctx_;
  std::vector<std::string> labelNames_;
  std::vector<LabelFn> labelFns_;
  std::vector<std::vector<Edge>> edges_;  ///< adjacency, indexed by state id
};

// ---------------------------------------------------------------------------
// SELF protocol suite (paper §3.1 + §4.2) over a whole netlist
// ---------------------------------------------------------------------------

struct ProtocolReport {
  ExploreResult explore;
  std::vector<std::string> violations;
  std::size_t propertiesChecked = 0;
  bool ok() const { return violations.empty(); }
};

/// Exploration limits plus the property toggles: the suite options ARE
/// checker options, so limits are set once instead of plumbed through a
/// nested copy (the old `options.checker.maxStates` spelling).
struct ProtocolSuiteOptions : CheckerOptions {
  bool checkLiveness = true;      ///< G F progress (needs fair environments)
  bool checkDeadlock = true;      ///< progress always reachable
  bool checkPersistence = true;   ///< Retry+/Retry- per channel
};

/// Runs the full §3.1 property set on every channel of the netlist:
/// Invariant (kill/stop exclusion), Retry+/Retry- (skipped on channels whose
/// producer is exempt, §4.2), global liveness and deadlock freedom.
ProtocolReport checkSelfProtocol(Netlist& netlist, ProtocolSuiteOptions options = {});

/// The leads-to property of eq. (1) for each input channel of a shared
/// module: a valid input token is eventually served or killed.
ProtocolReport checkSchedulerLeadsTo(Netlist& netlist, NodeId sharedModule,
                                     ProtocolSuiteOptions options = {});

}  // namespace esl::verify
