// Striped visited-set for explicit-state exploration.
//
// Maps packed netlist states to dense state ids, keyed on the canonical
// 64-bit state hash (esl::hashBytes). The table is striped: the hash selects
// one of S independently-locked shards, so concurrent probes from BFS worker
// lanes never contend on a single mutex. Ids are assigned by the caller (the
// checker's deterministic merge), never by the index — which is what keeps
// state numbering identical for every worker count.
//
// Byte storage stays with the caller: entries are (hash, id) only, and a
// probe resolves collisions by comparing against the caller-provided byte
// store. The checker's usage is phase-separated — lanes probe while a level
// expands, only the single-threaded merge inserts — so probes never observe a
// half-built entry; the per-stripe locks additionally keep any interleaved
// use (or a future fully-async explorer) well-defined.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/error.h"

namespace esl::verify {

constexpr std::uint32_t kNoState = 0xffffffffu;

class StateIndex {
 public:
  /// Resolves a state id back to its packed bytes (collision check).
  using BytesOf =
      std::function<const std::vector<std::uint8_t>&(std::uint32_t)>;

  explicit StateIndex(BytesOf bytesOf, unsigned stripes = 64)
      : bytesOf_(std::move(bytesOf)),
        stripes_(roundUpPow2(stripes)),
        stripes_store_(stripes_) {
    ESL_CHECK(static_cast<bool>(bytesOf_), "StateIndex: bytes accessor required");
  }

  /// Id of the state with these bytes, or kNoState.
  std::uint32_t find(std::uint64_t hash,
                     const std::vector<std::uint8_t>& bytes) const {
    const Stripe& s = stripe(hash);
    std::lock_guard<std::mutex> lock(s.m);
    const auto [lo, hi] = s.map.equal_range(hash);
    for (auto it = lo; it != hi; ++it)
      if (bytesOf_(it->second) == bytes) return it->second;
    return kNoState;
  }

  /// Registers `id` under `hash`; the caller has already stored the bytes
  /// where bytesOf_ can see them.
  void insert(std::uint64_t hash, std::uint32_t id) {
    Stripe& s = stripe(hash);
    std::lock_guard<std::mutex> lock(s.m);
    s.map.emplace(hash, id);
  }

  void clear() {
    for (auto& s : stripes_store_) {
      std::lock_guard<std::mutex> lock(s.m);
      s.map.clear();
    }
  }

 private:
  struct Stripe {
    mutable std::mutex m;
    std::unordered_multimap<std::uint64_t, std::uint32_t> map;
  };

  static unsigned roundUpPow2(unsigned v) {
    unsigned p = 1;
    while (p < v && p < (1u << 16)) p <<= 1;
    return p;
  }

  Stripe& stripe(std::uint64_t hash) {
    return stripes_store_[hash & (stripes_ - 1)];
  }
  const Stripe& stripe(std::uint64_t hash) const {
    return stripes_store_[hash & (stripes_ - 1)];
  }

  BytesOf bytesOf_;
  unsigned stripes_;
  mutable std::vector<Stripe> stripes_store_;
};

}  // namespace esl::verify
