#include "verify/checker.h"

#include <algorithm>
#include <queue>

#include "elastic/shared.h"

namespace esl::verify {

ModelChecker::ModelChecker(Netlist& netlist, CheckerOptions options)
    : netlist_(netlist), options_(options), ctx_(netlist) {
  ctx_.setProtocolChecking(false);
}

unsigned ModelChecker::addLabel(std::string name, LabelFn fn) {
  ESL_CHECK(labelNames_.size() < 64, "ModelChecker: too many labels (max 64)");
  labelNames_.push_back(std::move(name));
  labelFns_.push_back(std::move(fn));
  return static_cast<unsigned>(labelNames_.size() - 1);
}

unsigned ModelChecker::labelIndex(const std::string& name) const {
  for (unsigned i = 0; i < labelNames_.size(); ++i)
    if (labelNames_[i] == name) return i;
  throw EslError("ModelChecker: unknown label " + name);
}

ExploreResult ModelChecker::explore() {
  ESL_CHECK(ctx_.totalChoices() <= options_.maxChoiceBits,
            "ModelChecker: too many choice bits to enumerate");
  const std::size_t choiceCombos = std::size_t{1} << ctx_.totalChoices();

  ctx_.reset();
  std::map<std::vector<std::uint8_t>, std::uint32_t> ids;
  std::vector<std::vector<std::uint8_t>> states;
  std::queue<std::uint32_t> frontier;

  auto intern = [&](std::vector<std::uint8_t> s) -> std::pair<std::uint32_t, bool> {
    const auto it = ids.find(s);
    if (it != ids.end()) return {it->second, false};
    const auto id = static_cast<std::uint32_t>(states.size());
    ids.emplace(s, id);
    states.push_back(std::move(s));
    edges_.emplace_back();
    return {id, true};
  };

  edges_.clear();
  ExploreResult result;
  const auto [initId, isNew] = intern(ctx_.packState());
  (void)isNew;
  frontier.push(initId);

  while (!frontier.empty()) {
    if (states.size() > options_.maxStates) {
      result.truncated = true;
      break;
    }
    const std::uint32_t cur = frontier.front();
    frontier.pop();

    for (std::size_t combo = 0; combo < choiceCombos; ++combo) {
      ctx_.unpackState(states[cur]);
      std::vector<bool> bits(ctx_.totalChoices());
      for (std::size_t b = 0; b < bits.size(); ++b) bits[b] = (combo >> b) & 1;
      ctx_.setChoices(std::move(bits));
      ctx_.settle();

      std::uint64_t labels = 0;
      for (std::size_t l = 0; l < labelFns_.size(); ++l)
        if (labelFns_[l](ctx_)) labels |= 1ULL << l;

      ctx_.edge();
      const auto [next, fresh] = intern(ctx_.packState());
      edges_[cur].push_back({next, labels});
      ++result.transitions;
      if (fresh) frontier.push(next);
    }
  }
  result.states = states.size();
  return result;
}

std::optional<std::string> ModelChecker::checkNever(const std::string& label) const {
  const std::uint64_t mask = labelMask(label);
  for (std::size_t s = 0; s < edges_.size(); ++s)
    for (const Edge& e : edges_[s])
      if (e.labels & mask)
        return "G !" + label + " violated from state " + std::to_string(s);
  return std::nullopt;
}

std::optional<std::string> ModelChecker::checkStep(const std::string& p,
                                                   const std::string& q) const {
  const std::uint64_t pm = labelMask(p), qm = labelMask(q);
  for (std::size_t s = 0; s < edges_.size(); ++s) {
    for (const Edge& e : edges_[s]) {
      if (!(e.labels & pm)) continue;
      for (const Edge& next : edges_[e.to])
        if (!(next.labels & qm))
          return "G(" + p + " => X " + q + ") violated via state " +
                 std::to_string(e.to);
    }
  }
  return std::nullopt;
}

std::vector<bool> ModelChecker::canAvoidForever(std::uint64_t avoidMask) const {
  const std::size_t n = edges_.size();
  // Subgraph of edges that do NOT carry any avoided label.
  // A state can avoid forever iff it reaches a cycle inside the subgraph.
  // Iterative pruning: repeatedly remove states with no subgraph successor
  // that can still avoid; the fixpoint keeps exactly the cycle-reaching set.
  std::vector<bool> can(n, false);
  for (std::size_t s = 0; s < n; ++s)
    for (const Edge& e : edges_[s])
      if (!(e.labels & avoidMask)) {
        can[s] = true;
        break;
      }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (!can[s]) continue;
      bool ok = false;
      for (const Edge& e : edges_[s])
        if (!(e.labels & avoidMask) && can[e.to]) {
          ok = true;
          break;
        }
      if (!ok) {
        can[s] = false;
        changed = true;
      }
    }
  }
  return can;
}

std::optional<std::string> ModelChecker::checkRecurrence(const std::string& p) const {
  const std::vector<bool> avoid = canAvoidForever(labelMask(p));
  // The initial state is 0; GF p fails iff any reachable state can avoid p
  // forever (all stored states are reachable by construction).
  for (std::size_t s = 0; s < edges_.size(); ++s)
    if (avoid[s])
      return "G F " + p + " violated: state " + std::to_string(s) +
             " can avoid it forever";
  return std::nullopt;
}

std::optional<std::string> ModelChecker::checkLeadsTo(const std::string& p,
                                                      const std::string& q) const {
  const std::uint64_t pm = labelMask(p), qm = labelMask(q);
  const std::vector<bool> avoid = canAvoidForever(qm);
  for (std::size_t s = 0; s < edges_.size(); ++s)
    for (const Edge& e : edges_[s])
      if ((e.labels & pm) && !(e.labels & qm) && avoid[e.to])
        return "G(" + p + " => F " + q + ") violated from state " +
               std::to_string(s);
  return std::nullopt;
}

std::optional<std::string> ModelChecker::checkAlwaysReachable(
    const std::string& p) const {
  const std::uint64_t pm = labelMask(p);
  const std::size_t n = edges_.size();
  // Backward closure from sources of p-edges.
  std::vector<bool> good(n, false);
  for (std::size_t s = 0; s < n; ++s)
    for (const Edge& e : edges_[s])
      if (e.labels & pm) {
        good[s] = true;
        break;
      }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (good[s]) continue;
      for (const Edge& e : edges_[s])
        if (good[e.to]) {
          good[s] = true;
          changed = true;
          break;
        }
    }
  }
  for (std::size_t s = 0; s < n; ++s)
    if (!good[s])
      return "dead state " + std::to_string(s) + ": no " + p +
             " reachable any more";
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Protocol suite
// ---------------------------------------------------------------------------

namespace {

void addChannelLabels(ModelChecker& mc, const Netlist& nl, ChannelId ch) {
  const std::string base = nl.channel(ch).name;
  mc.addLabel(base + ".retryF", [ch](const SimContext& c) {
    const ChannelSignals& s = c.sig(ch);
    return s.vf && s.sf && !s.vb;
  });
  mc.addLabel(base + ".vf", [ch](const SimContext& c) { return c.sig(ch).vf; });
  mc.addLabel(base + ".retryB", [ch](const SimContext& c) {
    const ChannelSignals& s = c.sig(ch);
    return s.vb && s.sb && !s.vf;
  });
  mc.addLabel(base + ".vb", [ch](const SimContext& c) { return c.sig(ch).vb; });
  mc.addLabel(base + ".killStop", [ch](const SimContext& c) {
    const ChannelSignals& s = c.sig(ch);
    return (s.vf && s.vb && s.sf) || (s.vf && s.vb && s.sb);
  });
}

}  // namespace

ProtocolReport checkSelfProtocol(Netlist& netlist, ProtocolSuiteOptions options) {
  ModelChecker mc(netlist, options);
  const auto channels = netlist.channelIds();
  for (const ChannelId ch : channels) addChannelLabels(mc, netlist, ch);
  mc.addLabel("progress", [&channels](const SimContext& c) {
    for (const ChannelId ch : channels) {
      const ChannelSignals& s = c.sig(ch);
      if (fwdTransfer(s) || killEvent(s) || bwdTransfer(s)) return true;
    }
    return false;
  });

  ProtocolReport report;
  report.explore = mc.explore();

  auto note = [&report](const std::optional<std::string>& v) {
    ++report.propertiesChecked;
    if (v) report.violations.push_back(*v);
  };

  for (const ChannelId ch : channels) {
    const std::string base = netlist.channel(ch).name;
    note(mc.checkNever(base + ".killStop"));  // Invariant
    if (options.checkPersistence) {
      const bool exempt = !netlist.channelIsPersistent(ch);
      if (!exempt) note(mc.checkStep(base + ".retryF", base + ".vf"));  // Retry+
      note(mc.checkStep(base + ".retryB", base + ".vb"));               // Retry-
    }
  }
  if (options.checkLiveness) note(mc.checkRecurrence("progress"));
  if (options.checkDeadlock) note(mc.checkAlwaysReachable("progress"));
  return report;
}

ProtocolReport checkSchedulerLeadsTo(Netlist& netlist, NodeId sharedId,
                                     ProtocolSuiteOptions options) {
  auto* shared = dynamic_cast<SharedModule*>(&netlist.node(sharedId));
  ESL_CHECK(shared != nullptr, "checkSchedulerLeadsTo: node is not a SharedModule");

  ModelChecker mc(netlist, options);
  const unsigned k = shared->channels();
  for (unsigned i = 0; i < k; ++i) {
    const ChannelId in = shared->input(i);
    const ChannelId out = shared->output(i);
    mc.addLabel("in" + std::to_string(i) + ".valid",
                [in](const SimContext& c) { return c.sig(in).vf; });
    // Served through the shared unit, or killed by an anti-token.
    mc.addLabel("in" + std::to_string(i) + ".done", [in, out](const SimContext& c) {
      return fwdTransfer(c.sig(out)) || killEvent(c.sig(in)) ||
             killEvent(c.sig(out));
    });
  }

  ProtocolReport report;
  report.explore = mc.explore();
  for (unsigned i = 0; i < k; ++i) {
    ++report.propertiesChecked;
    const auto v = mc.checkLeadsTo("in" + std::to_string(i) + ".valid",
                                   "in" + std::to_string(i) + ".done");
    if (v) report.violations.push_back(*v);
  }
  return report;
}

}  // namespace esl::verify
