#include "verify/checker.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "base/executor.h"
#include "elastic/shared.h"

namespace esl::verify {

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

/// Per-lane exploration replica: its own netlist instance (nodes carry
/// mutable state, so they cannot be shared across threads) plus the context
/// and scratch buffers that lane expands states with.
struct ModelChecker::Replica {
  explicit Replica(Netlist netlist) : nl(std::move(netlist)), ctx(nl) {
    ctx.setProtocolChecking(false);
  }
  Netlist nl;
  SimContext ctx;
  std::vector<std::uint8_t> scratch;
};

ModelChecker::ModelChecker(Netlist& netlist, CheckerOptions options)
    : netlist_(netlist),
      options_(options),
      ctx_(netlist_),
      index_([this](std::uint32_t id) -> const std::vector<std::uint8_t>& {
        return states_[id];
      }) {
  ctx_.setProtocolChecking(false);
}

namespace {
Netlist buildFromRecipe(const NetlistRecipe& recipe) {
  ESL_CHECK(static_cast<bool>(recipe), "ModelChecker: recipe required");
  return recipe();
}
}  // namespace

ModelChecker::ModelChecker(NetlistSpec spec, CheckerOptions options)
    : ModelChecker(NetlistRecipe([spec = std::move(spec)] { return spec.build(); }),
                   options) {}

ModelChecker::ModelChecker(NetlistRecipe recipe, CheckerOptions options)
    : recipe_(std::move(recipe)),
      ownedNetlist_(std::make_unique<Netlist>(buildFromRecipe(recipe_))),
      netlist_(*ownedNetlist_),
      options_(options),
      ctx_(netlist_),
      index_([this](std::uint32_t id) -> const std::vector<std::uint8_t>& {
        return states_[id];
      }) {
  ctx_.setProtocolChecking(false);
}

ModelChecker::~ModelChecker() = default;

unsigned ModelChecker::addLabel(std::string name, LabelFn fn) {
  ESL_CHECK(labelNames_.size() < 65536, "ModelChecker: too many labels");
  labelNames_.push_back(std::move(name));
  labelFns_.push_back(std::move(fn));
  return static_cast<unsigned>(labelNames_.size() - 1);
}

unsigned ModelChecker::labelIndex(const std::string& name) const {
  for (unsigned i = 0; i < labelNames_.size(); ++i) {
    if (labelNames_[i] != name) continue;
    // The graph stores labelWords_ words per edge, sized for the labels that
    // existed when explore() ran; a later registration has no bits there
    // (and could even index past the stored words).
    ESL_CHECK(i < exploredLabels_,
              "ModelChecker: label '" + name +
                  "' was not registered when explore() ran");
    return i;
  }
  throw EslError("ModelChecker: unknown label " + name);
}

// ---------------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------------

std::size_t ModelChecker::comboCount() const {
  return std::size_t{1} << ctx_.totalChoices();
}

void ModelChecker::precomputeCombos() {
  const std::size_t combos = comboCount();
  comboBits_.assign(combos, {});
  for (std::size_t combo = 0; combo < combos; ++combo) {
    std::vector<bool> bits(ctx_.totalChoices());
    for (std::size_t b = 0; b < bits.size(); ++b) bits[b] = (combo >> b) & 1;
    comboBits_[combo] = std::move(bits);
  }
}

std::uint32_t ModelChecker::internFresh(std::uint64_t hash,
                                        std::vector<std::uint8_t> bytes,
                                        std::uint32_t parent,
                                        std::uint32_t parentCombo) {
  const auto id = static_cast<std::uint32_t>(states_.size());
  states_.push_back(std::move(bytes));
  edges_.emplace_back();
  labels_.emplace_back();
  parentState_.push_back(parent);
  parentCombo_.push_back(parentCombo);
  index_.insert(hash, id);
  return id;
}

void ModelChecker::stepOnce(SimContext& ctx,
                            const std::vector<std::uint8_t>& from,
                            std::size_t combo,
                            std::vector<std::uint8_t>& scratch,
                            std::vector<std::uint64_t>& labelsOut) {
  ctx.unpackState(from);
  ctx.setChoicesFrom(comboBits_[combo]);
  ctx.settle();
  const std::size_t base = labelsOut.size();
  labelsOut.resize(base + labelWords_, 0);
  for (std::size_t l = 0; l < labelFns_.size(); ++l)
    if (labelFns_[l](ctx)) labelsOut[base + l / 64] |= 1ULL << (l % 64);
  ctx.edge();
  ctx.packStateInto(scratch);
}

ExploreResult ModelChecker::explore() {
  ESL_CHECK(ctx_.totalChoices() <= options_.maxChoiceBits,
            "ModelChecker: too many choice bits to enumerate");
  const bool parallel = options_.workers != 1;
  ESL_CHECK(!parallel || static_cast<bool>(recipe_),
            "ModelChecker: workers != 1 requires a recipe-constructed checker "
            "(per-lane netlist replicas)");

  states_.clear();
  edges_.clear();
  labels_.clear();
  parentState_.clear();
  parentCombo_.clear();
  index_.clear();
  transitions_ = 0;
  truncated_ = false;
  labelWords_ = labelFns_.empty() ? 1 : (labelFns_.size() + 63) / 64;
  exploredLabels_ = labelFns_.size();
  precomputeCombos();

  ctx_.reset();
  ctx_.packStateInto(packScratch_);
  internFresh(hashBytes(packScratch_), packScratch_, 0, 0);

  if (parallel)
    exploreParallel();
  else
    exploreSerial();

  ExploreResult result;
  result.states = states_.size();
  result.transitions = transitions_;
  result.truncated = truncated_;
  return result;
}

void ModelChecker::exploreSerial() {
  // States are interned in discovery order, so iterating ids in order IS the
  // BFS queue; states_ grows as the loop runs.
  const std::size_t combos = comboCount();
  for (std::uint32_t cur = 0; cur < states_.size(); ++cur) {
    if (states_.size() > options_.maxStates) {
      truncated_ = true;
      break;
    }
    edges_[cur].reserve(combos);
    labels_[cur].reserve(combos * labelWords_);
    for (std::size_t combo = 0; combo < combos; ++combo) {
      stepOnce(ctx_, states_[cur], combo, packScratch_, labels_[cur]);
      const std::uint64_t hash = hashBytes(packScratch_);
      std::uint32_t next = index_.find(hash, packScratch_);
      if (next == kNoState)
        next = internFresh(hash, packScratch_, cur,
                           static_cast<std::uint32_t>(combo));
      edges_[cur].push_back(next);
      ++transitions_;
    }
  }
}

void ModelChecker::ensureReplicas(unsigned workers) {
  while (replicas_.size() + 1 < workers) {
    auto replica = std::make_unique<Replica>(recipe_());
    ESL_CHECK(replica->ctx.totalChoices() == ctx_.totalChoices(),
              "ModelChecker: recipe rebuilt a netlist with different choice "
              "bits (recipe must be deterministic)");
    replica->ctx.packStateInto(replica->scratch);
    ESL_CHECK(replica->scratch == states_[0],
              "ModelChecker: recipe rebuilt a netlist with a different "
              "initial state (recipe must be deterministic)");
    replicas_.push_back(std::move(replica));
  }
}

void ModelChecker::exploreParallel() {
  // The executor owns the 0-means-hardware-concurrency resolution; its lane
  // count is the worker count everywhere below.
  Executor executor(options_.workers);
  const unsigned workers = executor.lanes();
  ensureReplicas(workers);
  const std::size_t combos = comboCount();

  /// Expansion output for one frontier state: per-combo successor records
  /// plus the flat label words, exactly as the merge will store them.
  struct StateExpansion {
    std::vector<SuccessorRec> recs;
    std::vector<std::uint64_t> labelWords;
  };

  std::vector<StateExpansion> slots;
  std::uint32_t levelBegin = 0;
  while (levelBegin < states_.size() && !truncated_) {
    const auto levelEnd = static_cast<std::uint32_t>(states_.size());
    slots.assign(levelEnd - levelBegin, {});

    // Expansion: lanes read states_/index_ only (the merge below is the sole
    // writer, and it runs strictly between parallelFor calls).
    executor.parallelFor(
        levelEnd - levelBegin, [&](std::size_t i, unsigned lane) {
          SimContext& ctx = lane == 0 ? ctx_ : replicas_[lane - 1]->ctx;
          std::vector<std::uint8_t>& scratch =
              lane == 0 ? packScratch_ : replicas_[lane - 1]->scratch;
          const std::uint32_t cur = levelBegin + static_cast<std::uint32_t>(i);
          StateExpansion& out = slots[i];
          out.recs.resize(combos);
          out.labelWords.reserve(combos * labelWords_);
          for (std::size_t combo = 0; combo < combos; ++combo) {
            SuccessorRec& rec = out.recs[combo];
            stepOnce(ctx, states_[cur], combo, scratch, out.labelWords);
            rec.hash = hashBytes(scratch);
            rec.known = index_.find(rec.hash, scratch);
            if (rec.known == kNoState) rec.bytes = scratch;
          }
        });

    // Deterministic merge: states in id order, combos in order — the exact
    // order the serial BFS interns successors, including the truncation
    // point (checked before each state's successors, as the serial loop
    // checks before expanding each popped state).
    for (std::uint32_t cur = levelBegin; cur < levelEnd; ++cur) {
      if (states_.size() > options_.maxStates) {
        truncated_ = true;
        break;
      }
      StateExpansion& out = slots[cur - levelBegin];
      labels_[cur] = std::move(out.labelWords);
      edges_[cur].reserve(combos);
      for (std::size_t combo = 0; combo < combos; ++combo) {
        SuccessorRec& rec = out.recs[combo];
        std::uint32_t next = rec.known;
        if (next == kNoState) {
          // The expansion-time probe ran before this merge interned the
          // current level's discoveries, so re-probe before interning.
          next = index_.find(rec.hash, rec.bytes);
          if (next == kNoState)
            next = internFresh(rec.hash, std::move(rec.bytes), cur,
                               static_cast<std::uint32_t>(combo));
        }
        edges_[cur].push_back(next);
        ++transitions_;
      }
    }
    levelBegin = levelEnd;
  }
}

// ---------------------------------------------------------------------------
// Counterexample traces
// ---------------------------------------------------------------------------

void ModelChecker::tracePathTo(Violation& v, std::uint32_t s) const {
  std::vector<std::uint32_t> reversed;
  for (std::uint32_t at = s; at != 0; at = parentState_[at]) reversed.push_back(at);
  v.states.clear();
  v.combos.clear();
  v.states.push_back(0);
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    v.combos.push_back(parentCombo_[*it]);
    v.states.push_back(*it);
  }
}

void ModelChecker::traceEdge(Violation& v, std::uint32_t combo) const {
  const std::uint32_t from = v.states.back();
  v.combos.push_back(combo);
  v.states.push_back(edges_[from][combo]);
}

void ModelChecker::traceLasso(Violation& v, unsigned avoidLabel,
                              const std::vector<bool>& can) const {
  // Walk the avoid-subgraph (always taking the first qualifying edge, so the
  // lasso is deterministic) until a state of the walk repeats.
  const std::size_t walkStart = v.states.size() - 1;
  std::unordered_map<std::uint32_t, std::size_t> seenAt;
  seenAt.emplace(v.states.back(), walkStart);
  for (;;) {
    const std::uint32_t cur = v.states.back();
    bool stepped = false;
    for (std::size_t combo = 0; combo < edgeCount(cur); ++combo) {
      if (edgeHasLabel(cur, combo, avoidLabel) || !can[edgeTo(cur, combo)])
        continue;
      traceEdge(v, static_cast<std::uint32_t>(combo));
      stepped = true;
      break;
    }
    ESL_ASSERT(stepped);  // can[] is a fixpoint: a successor always exists
    const auto [it, fresh] = seenAt.emplace(v.states.back(), v.states.size() - 1);
    if (!fresh) {
      v.lassoStart = it->second;
      return;
    }
  }
}

void ModelChecker::replay(const Violation& v) {
  ESL_CHECK(!v.inconclusive && !v.states.empty(),
            "ModelChecker::replay: violation carries no counterexample");
  ESL_CHECK(v.states.size() == v.combos.size() + 1,
            "ModelChecker::replay: malformed trace");
  ctx_.reset();
  ctx_.packStateInto(packScratch_);
  if (packScratch_ != states_[v.states.front()])
    throw InternalError("counterexample replay: initial state mismatch");
  for (std::size_t i = 0; i < v.combos.size(); ++i) {
    ctx_.setChoicesFrom(comboBits_[v.combos[i]]);
    ctx_.settle();
    ctx_.edge();
    ctx_.packStateInto(packScratch_);
    if (packScratch_ != states_[v.states[i + 1]])
      throw InternalError("counterexample replay: diverged at step " +
                          std::to_string(i) + " (expected state " +
                          std::to_string(v.states[i + 1]) + ")");
  }
}

// ---------------------------------------------------------------------------
// Property checks
// ---------------------------------------------------------------------------

std::optional<Violation> ModelChecker::refuseIfTruncated(
    const std::string& property) const {
  if (!truncated_) return std::nullopt;
  Violation v;
  v.property = property;
  v.diagnostic = "inconclusive: state space truncated at " +
                 std::to_string(states_.size()) + " states (maxStates=" +
                 std::to_string(options_.maxStates) +
                 ") — a partial graph cannot certify the property";
  v.inconclusive = true;
  return v;
}

std::optional<Violation> ModelChecker::checkNever(const std::string& label) const {
  const unsigned l = labelIndex(label);
  for (std::uint32_t s = 0; s < edges_.size(); ++s) {
    for (std::size_t combo = 0; combo < edgeCount(s); ++combo) {
      if (!edgeHasLabel(s, combo, l)) continue;
      Violation v;
      v.property = "G !" + label;
      v.diagnostic = "violated from state " + std::to_string(s);
      tracePathTo(v, s);
      traceEdge(v, static_cast<std::uint32_t>(combo));
      return v;
    }
  }
  // A violation found in the explored prefix is real either way, but a clean
  // prefix of a truncated graph certifies nothing.
  return refuseIfTruncated("G !" + label);
}

std::optional<Violation> ModelChecker::checkStep(const std::string& p,
                                                 const std::string& q) const {
  const unsigned pl = labelIndex(p), ql = labelIndex(q);
  for (std::uint32_t s = 0; s < edges_.size(); ++s) {
    for (std::size_t c1 = 0; c1 < edgeCount(s); ++c1) {
      if (!edgeHasLabel(s, c1, pl)) continue;
      const std::uint32_t t = edgeTo(s, c1);
      for (std::size_t c2 = 0; c2 < edgeCount(t); ++c2) {
        if (edgeHasLabel(t, c2, ql)) continue;
        Violation v;
        v.property = "G(" + p + " => X " + q + ")";
        v.diagnostic = "violated via state " + std::to_string(t);
        tracePathTo(v, s);
        traceEdge(v, static_cast<std::uint32_t>(c1));
        traceEdge(v, static_cast<std::uint32_t>(c2));
        return v;
      }
    }
  }
  return refuseIfTruncated("G(" + p + " => X " + q + ")");
}

std::vector<bool> ModelChecker::canAvoidForever(unsigned avoidLabel) const {
  const std::size_t n = edges_.size();
  // Subgraph of edges that do NOT carry the avoided label.
  // A state can avoid forever iff it reaches a cycle inside the subgraph.
  // Iterative pruning: repeatedly remove states with no subgraph successor
  // that can still avoid; the fixpoint keeps exactly the cycle-reaching set.
  std::vector<bool> can(n, false);
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::size_t combo = 0; combo < edgeCount(s); ++combo)
      if (!edgeHasLabel(s, combo, avoidLabel)) {
        can[s] = true;
        break;
      }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!can[s]) continue;
      bool ok = false;
      for (std::size_t combo = 0; combo < edgeCount(s); ++combo)
        if (!edgeHasLabel(s, combo, avoidLabel) && can[edgeTo(s, combo)]) {
          ok = true;
          break;
        }
      if (!ok) {
        can[s] = false;
        changed = true;
      }
    }
  }
  return can;
}

std::optional<Violation> ModelChecker::checkRecurrence(const std::string& p) const {
  const std::string property = "G F " + p;
  if (auto v = refuseIfTruncated(property)) return v;
  const unsigned pl = labelIndex(p);
  const std::vector<bool> avoid = canAvoidForever(pl);
  // The initial state is 0; GF p fails iff any reachable state can avoid p
  // forever (all stored states are reachable by construction).
  for (std::uint32_t s = 0; s < edges_.size(); ++s) {
    if (!avoid[s]) continue;
    Violation v;
    v.property = property;
    v.diagnostic =
        "violated: state " + std::to_string(s) + " can avoid it forever";
    tracePathTo(v, s);
    traceLasso(v, pl, avoid);
    return v;
  }
  return std::nullopt;
}

std::optional<Violation> ModelChecker::checkLeadsTo(const std::string& p,
                                                    const std::string& q) const {
  const std::string property = "G(" + p + " => F " + q + ")";
  if (auto v = refuseIfTruncated(property)) return v;
  const unsigned pl = labelIndex(p), ql = labelIndex(q);
  const std::vector<bool> avoid = canAvoidForever(ql);
  for (std::uint32_t s = 0; s < edges_.size(); ++s) {
    for (std::size_t combo = 0; combo < edgeCount(s); ++combo) {
      if (!(edgeHasLabel(s, combo, pl) && !edgeHasLabel(s, combo, ql) &&
            avoid[edgeTo(s, combo)]))
        continue;
      Violation v;
      v.property = property;
      v.diagnostic = "violated from state " + std::to_string(s);
      tracePathTo(v, s);
      traceEdge(v, static_cast<std::uint32_t>(combo));
      traceLasso(v, ql, avoid);
      return v;
    }
  }
  return std::nullopt;
}

std::optional<Violation> ModelChecker::checkAlwaysReachable(
    const std::string& p) const {
  const std::string property = "G EF " + p;
  if (auto v = refuseIfTruncated(property)) return v;
  const unsigned pl = labelIndex(p);
  const std::size_t n = edges_.size();
  // Backward closure from sources of p-edges.
  std::vector<bool> good(n, false);
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::size_t combo = 0; combo < edgeCount(s); ++combo)
      if (edgeHasLabel(s, combo, pl)) {
        good[s] = true;
        break;
      }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (good[s]) continue;
      for (std::size_t combo = 0; combo < edgeCount(s); ++combo)
        if (good[edgeTo(s, combo)]) {
          good[s] = true;
          changed = true;
          break;
        }
    }
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    if (good[s]) continue;
    Violation v;
    v.property = property;
    v.diagnostic = "dead state " + std::to_string(s) + ": no " + p +
                   " reachable any more";
    tracePathTo(v, s);
    return v;
  }
  return std::nullopt;
}

std::uint64_t ModelChecker::graphFingerprint() const {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(states_.size());
  mix(transitions_);
  mix(truncated_ ? 1 : 0);
  mix(labelWords_);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    mix(hashBytes(states_[s]));
    mix(parentState_[s]);
    mix(parentCombo_[s]);
    mix(edges_[s].size());
    for (const std::uint32_t to : edges_[s]) mix(to);
    for (const std::uint64_t word : labels_[s]) mix(word);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Protocol suite
// ---------------------------------------------------------------------------

namespace {

void addChannelLabels(ModelChecker& mc, const Netlist& nl, ChannelId ch) {
  const std::string base = nl.channel(ch).name;
  mc.addLabel(base + ".retryF", [ch](const SimContext& c) {
    const ConstSig s = c.sig(ch);
    return s.vf() && s.sf() && !s.vb();
  });
  mc.addLabel(base + ".vf", [ch](const SimContext& c) { return c.sig(ch).vf(); });
  mc.addLabel(base + ".retryB", [ch](const SimContext& c) {
    const ConstSig s = c.sig(ch);
    return s.vb() && s.sb() && !s.vf();
  });
  mc.addLabel(base + ".vb", [ch](const SimContext& c) { return c.sig(ch).vb(); });
  mc.addLabel(base + ".killStop", [ch](const SimContext& c) {
    const ConstSig s = c.sig(ch);
    return (s.vf() && s.vb() && s.sf()) || (s.vf() && s.vb() && s.sb());
  });
}

/// Replays every counterexample the checks produced: cheap (paths are
/// BFS-short), and it turns any internal inconsistency between the explored
/// graph and the real transition system — e.g. a buggy parallel merge — into
/// an InternalError right where the report is built.
void note(ProtocolReport& report, ModelChecker& mc,
          std::optional<Violation> violation) {
  ++report.propertiesChecked;
  if (!violation) return;
  if (!violation->inconclusive) mc.replay(*violation);
  report.violations.push_back(std::move(*violation));
}

ProtocolReport runSelfSuite(ModelChecker& mc, Netlist& netlist,
                            const ProtocolSuiteOptions& options) {
  const auto channels = netlist.channelIds();
  for (const ChannelId ch : channels) addChannelLabels(mc, netlist, ch);
  mc.addLabel("progress", [channels](const SimContext& c) {
    for (const ChannelId ch : channels) {
      const ConstSig s = c.sig(ch);
      if (fwdTransfer(s) || killEvent(s) || bwdTransfer(s)) return true;
    }
    return false;
  });

  ProtocolReport report;
  report.explore = mc.explore();

  for (const ChannelId ch : channels) {
    const std::string base = netlist.channel(ch).name;
    note(report, mc, mc.checkNever(base + ".killStop"));  // Invariant
    if (options.checkPersistence) {
      const bool exempt = !netlist.channelIsPersistent(ch);
      if (!exempt)
        note(report, mc, mc.checkStep(base + ".retryF", base + ".vf"));  // Retry+
      note(report, mc, mc.checkStep(base + ".retryB", base + ".vb"));    // Retry-
    }
  }
  if (options.checkLiveness) note(report, mc, mc.checkRecurrence("progress"));
  if (options.checkDeadlock) note(report, mc, mc.checkAlwaysReachable("progress"));
  return report;
}

ProtocolReport runSchedulerSuite(ModelChecker& mc, Netlist& netlist,
                                 NodeId sharedId) {
  auto* shared = dynamic_cast<SharedModule*>(&netlist.node(sharedId));
  ESL_CHECK(shared != nullptr, "checkSchedulerLeadsTo: node is not a SharedModule");

  const unsigned k = shared->channels();
  for (unsigned i = 0; i < k; ++i) {
    const ChannelId in = shared->input(i);
    const ChannelId out = shared->output(i);
    mc.addLabel("in" + std::to_string(i) + ".valid",
                [in](const SimContext& c) { return c.sig(in).vf(); });
    // Served through the shared unit, or killed by an anti-token.
    mc.addLabel("in" + std::to_string(i) + ".done", [in, out](const SimContext& c) {
      return fwdTransfer(c.sig(out)) || killEvent(c.sig(in)) ||
             killEvent(c.sig(out));
    });
  }

  ProtocolReport report;
  report.explore = mc.explore();
  for (unsigned i = 0; i < k; ++i)
    note(report, mc,
         mc.checkLeadsTo("in" + std::to_string(i) + ".valid",
                         "in" + std::to_string(i) + ".done"));
  return report;
}

}  // namespace

ProtocolReport checkSelfProtocol(Netlist& netlist, ProtocolSuiteOptions options) {
  ModelChecker mc(netlist, options);
  return runSelfSuite(mc, netlist, options);
}

ProtocolReport checkSelfProtocol(const NetlistSpec& spec,
                                 ProtocolSuiteOptions options) {
  ModelChecker mc(spec, options);
  return runSelfSuite(mc, mc.netlist(), options);
}

ProtocolReport checkSelfProtocol(const NetlistRecipe& recipe,
                                 ProtocolSuiteOptions options) {
  ModelChecker mc(recipe, options);
  return runSelfSuite(mc, mc.netlist(), options);
}

ProtocolReport checkSchedulerLeadsTo(Netlist& netlist, NodeId sharedId,
                                     ProtocolSuiteOptions options) {
  ModelChecker mc(netlist, options);
  return runSchedulerSuite(mc, netlist, sharedId);
}

ProtocolReport checkSchedulerLeadsTo(const NetlistSpec& spec, NodeId sharedId,
                                     ProtocolSuiteOptions options) {
  ModelChecker mc(spec, options);
  return runSchedulerSuite(mc, mc.netlist(), sharedId);
}

ProtocolReport checkSchedulerLeadsTo(const NetlistRecipe& recipe, NodeId sharedId,
                                     ProtocolSuiteOptions options) {
  ModelChecker mc(recipe, options);
  return runSchedulerSuite(mc, mc.netlist(), sharedId);
}

// ---------------------------------------------------------------------------
// Suite farm
// ---------------------------------------------------------------------------

std::vector<SuiteFarmResult> runSuiteFarm(const std::vector<SuiteJob>& jobs,
                                          unsigned threads) {
  ESL_CHECK(!jobs.empty(), "runSuiteFarm: no jobs");
  std::vector<SuiteFarmResult> results(jobs.size());
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > jobs.size()) threads = static_cast<unsigned>(jobs.size());
  Executor executor(threads);
  executor.parallelFor(jobs.size(), [&](std::size_t i, unsigned) {
    const SuiteJob& job = jobs[i];
    SuiteFarmResult& result = results[i];
    result.name = job.name;
    try {
      ESL_CHECK(!job.spec.empty() || static_cast<bool>(job.recipe),
                "runSuiteFarm: job '" + job.name + "' has no spec or recipe");
      const NetlistRecipe recipe =
          job.spec.empty() ? job.recipe
                           : NetlistRecipe([&job] { return job.spec.build(); });
      result.report = checkSelfProtocol(recipe, job.options);
      if (job.sharedModule != kNoNode) {
        ProtocolReport leadsTo =
            checkSchedulerLeadsTo(recipe, job.sharedModule, job.options);
        result.report.propertiesChecked += leadsTo.propertiesChecked;
        for (Violation& v : leadsTo.violations)
          result.report.violations.push_back(std::move(v));
      }
    } catch (const std::exception& e) {
      result.error = e.what();
    }
  });
  return results;
}

}  // namespace esl::verify
