#include "transform/transform.h"

#include <queue>

#include "elastic/registry.h"

namespace esl::transform {

namespace {

FuncNode* asFunc(Netlist& nl, NodeId id) {
  return nl.hasNode(id) ? dynamic_cast<FuncNode*>(&nl.node(id)) : nullptr;
}

FuncNode& requireMux(Netlist& nl, NodeId id) {
  FuncNode* mux = asFunc(nl, id);
  if (mux == nullptr || mux->role() != "mux")
    throw TransformError("node is not a join multiplexer");
  return *mux;
}

FuncNode& requireUnaryFunc(Netlist& nl, NodeId id) {
  FuncNode* f = asFunc(nl, id);
  if (f == nullptr) throw TransformError("node is not a function block");
  if (f->numInputs() != 1 || f->numOutputs() != 1)
    throw TransformError("function block must be 1-in/1-out for this transform");
  return *f;
}

}  // namespace

ElasticBuffer& insertBubble(Netlist& nl, ChannelId ch, std::string name) {
  if (!nl.hasChannel(ch)) throw TransformError("insertBubble: unknown channel");
  const unsigned width = nl.channel(ch).width;
  if (name.empty()) name = "bubble@" + nl.channel(ch).name;
  auto& eb = nl.make<ElasticBuffer>(std::move(name), width);
  nl.insertOnChannel(ch, eb);
  return eb;
}

void removeBubble(Netlist& nl, NodeId ebId) {
  if (!nl.hasNode(ebId)) throw TransformError("removeBubble: unknown node");
  auto* eb = dynamic_cast<ElasticBuffer*>(&nl.node(ebId));
  if (eb == nullptr) throw TransformError("removeBubble: node is not an EB");
  if (!eb->initTokens().empty())
    throw TransformError("removeBubble: EB is not a bubble (holds initial tokens)");
  nl.bypassNode(ebId);
  nl.removeNode(ebId);
}

std::vector<NodeId> retimeBackward(Netlist& nl, NodeId ebId) {
  if (!nl.hasNode(ebId)) throw TransformError("retimeBackward: unknown node");
  auto* eb = dynamic_cast<ElasticBuffer*>(&nl.node(ebId));
  if (eb == nullptr) throw TransformError("retimeBackward: node is not an EB");
  if (!eb->initTokens().empty())
    throw TransformError("retimeBackward: only empty EBs can move backward "
                         "(token values cannot be inverted through the function)");
  const ChannelId upCh = eb->input(0);
  const NodeId funcId = nl.channel(upCh).producer;
  FuncNode* func = asFunc(nl, funcId);
  if (func == nullptr)
    throw TransformError("retimeBackward: EB is not directly after a function block");

  nl.bypassNode(ebId);
  nl.removeNode(ebId);
  std::vector<NodeId> ebs;
  for (unsigned i = 0; i < func->numInputs(); ++i) {
    auto& newEb = nl.make<ElasticBuffer>(
        func->name() + ".in" + std::to_string(i) + ".eb", func->inputWidth(i));
    nl.insertOnChannel(func->input(i), newEb);
    ebs.push_back(newEb.id());
  }
  return ebs;
}

NodeId retimeForward(Netlist& nl, NodeId funcId) {
  FuncNode* func = asFunc(nl, funcId);
  if (func == nullptr) throw TransformError("retimeForward: node is not a function");
  if (func->numOutputs() != 1) throw TransformError("retimeForward: need one output");

  // Every input must be fed directly by an EB; all with equal token counts.
  std::vector<ElasticBuffer*> inEbs;
  for (unsigned i = 0; i < func->numInputs(); ++i) {
    const NodeId producer = nl.channel(func->input(i)).producer;
    auto* eb = dynamic_cast<ElasticBuffer*>(&nl.node(producer));
    if (eb == nullptr)
      throw TransformError("retimeForward: input " + std::to_string(i) +
                           " is not fed by an EB");
    inEbs.push_back(eb);
  }
  const std::size_t tokenCount = inEbs.front()->initTokens().size();
  for (const ElasticBuffer* eb : inEbs)
    if (eb->initTokens().size() != tokenCount)
      throw TransformError("retimeForward: input EBs hold different token counts");

  // Recompute the retimed tokens through the function.
  std::vector<BitVec> outTokens;
  for (std::size_t k = 0; k < tokenCount; ++k) {
    std::vector<BitVec> args;
    for (ElasticBuffer* eb : inEbs) args.push_back(eb->initTokens()[k]);
    outTokens.push_back(func->fn()(args));
  }

  // Remove the input EBs, insert the output EB.
  for (ElasticBuffer* eb : inEbs) {
    const NodeId id = eb->id();
    nl.bypassNode(id);
    nl.removeNode(id);
  }
  auto& outEb = nl.make<ElasticBuffer>(func->name() + ".out.eb", func->outputWidth(0),
                                       std::max<unsigned>(2, tokenCount),
                                       std::move(outTokens));
  nl.insertOnChannel(func->output(0), outEb);
  return outEb.id();
}

ShannonResult shannonDecompose(Netlist& nl, NodeId muxId, NodeId funcId) {
  FuncNode& mux = requireMux(nl, muxId);
  FuncNode& func = requireUnaryFunc(nl, funcId);
  if (nl.channel(func.input(0)).producer != muxId)
    throw TransformError("shannonDecompose: function is not directly after the mux");

  const unsigned dataInputs = mux.numInputs() - 1;
  const unsigned selWidth = mux.inputWidth(0);
  const unsigned outWidth = func.outputWidth(0);

  // New mux over the transformed width.
  auto& newMux = makeJoinMux(nl, mux.name(), dataInputs, selWidth, outWidth);

  // Duplicate the function onto every data input.
  ShannonResult result;
  for (unsigned i = 0; i < dataInputs; ++i) {
    const ChannelId dataCh = mux.input(1 + i);
    auto& copy = nl.make<FuncNode>(func.name() + std::to_string(i),
                                   std::vector<unsigned>{func.inputWidth(0)}, outWidth,
                                   func.fn(), func.datapathCost());
    // A copy is reconstructible from the same attributes, so duplicated
    // registry-built functions stay serializable.
    if (func.hasBuildParams()) copy.setBuildParams(func.buildParams());
    nl.rebindConsumer(dataCh, copy, 0);
    nl.connect(copy, 0, newMux, 1 + i);
    result.copies.push_back(copy.id());
  }
  nl.rebindConsumer(mux.input(0), newMux, 0);

  // Output of func becomes the output of the new mux.
  const ChannelId outCh = func.output(0);
  nl.rebindProducer(outCh, newMux, 0);

  // Dispose of the old func and mux (and the channel between them).
  nl.disconnect(func.input(0));
  nl.removeNode(funcId);
  nl.removeNode(muxId);
  result.mux = newMux.id();
  return result;
}

NodeId convertToEarlyEval(Netlist& nl, NodeId muxId) {
  FuncNode& mux = requireMux(nl, muxId);
  const unsigned dataInputs = mux.numInputs() - 1;
  const unsigned selWidth = mux.inputWidth(0);
  const unsigned width = mux.outputWidth(0);

  auto& ee = nl.make<EarlyEvalMux>(mux.name() + ".ee", dataInputs, selWidth, width);
  nl.rebindConsumer(mux.input(0), ee, 0);
  for (unsigned i = 0; i < dataInputs; ++i)
    nl.rebindConsumer(mux.input(1 + i), ee, 1 + i);
  nl.rebindProducer(mux.output(0), ee, 0);
  nl.removeNode(muxId);
  return ee.id();
}

NodeId shareFunctions(Netlist& nl, const std::vector<NodeId>& funcs, NodeId eeMuxId,
                      std::unique_ptr<sched::Scheduler> scheduler) {
  if (!nl.hasNode(eeMuxId)) throw TransformError("shareFunctions: unknown mux");
  auto* ee = dynamic_cast<EarlyEvalMux*>(&nl.node(eeMuxId));
  if (ee == nullptr)
    throw TransformError("shareFunctions: node is not an early-evaluation mux");
  if (funcs.size() != ee->dataInputs())
    throw TransformError("shareFunctions: need one function per mux data input");

  std::vector<FuncNode*> blocks;
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    FuncNode& f = requireUnaryFunc(nl, funcs[i]);
    if (nl.channel(f.output(0)).consumer != eeMuxId ||
        nl.channel(f.output(0)).consumerPort != 1 + i)
      throw TransformError("shareFunctions: funcs[" + std::to_string(i) +
                           "] does not feed mux data input " + std::to_string(i));
    blocks.push_back(&f);
  }
  const unsigned inWidth = blocks.front()->inputWidth(0);
  const unsigned outWidth = blocks.front()->outputWidth(0);
  for (const FuncNode* f : blocks)
    if (f->inputWidth(0) != inWidth || f->outputWidth(0) != outWidth)
      throw TransformError("shareFunctions: function widths differ");

  // Serialization attributes for the shared module: the function spec comes
  // from the absorbed block's attributes, the scheduler from its policy
  // description. Either may be unavailable (raw lambda, oracle policy) — the
  // module still works, it just cannot be printed to `.esl`.
  Params sharedParams;
  if (blocks.front()->hasBuildParams()) {
    Params sched;
    if (Registry::describeScheduler(*scheduler, sched, "sched")) {
      sharedParams.setU64("k", static_cast<std::uint64_t>(funcs.size()));
      sharedParams.setU64("in", inWidth);
      sharedParams.setU64("out", outWidth);
      for (const auto& [key, value] : blocks.front()->buildParams().entries())
        if (key == "fn" || key.rfind("fn.", 0) == 0) sharedParams.set(key, value);
      for (const auto& [key, value] : sched.entries()) sharedParams.set(key, value);
      sharedParams.setReal("delay", blocks.front()->datapathCost().delay);
      sharedParams.setReal("area", blocks.front()->datapathCost().area);
    }
  }

  auto& shared = nl.make<SharedModule>(
      blocks.front()->name() + ".shared", static_cast<unsigned>(funcs.size()), inWidth,
      outWidth, unaryAdapter(blocks.front()->fn()), std::move(scheduler),
      blocks.front()->datapathCost());
  if (!sharedParams.empty()) shared.setBuildParams(std::move(sharedParams));

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    FuncNode& f = *blocks[i];
    nl.rebindConsumer(f.input(0), shared, static_cast<unsigned>(i));
    nl.rebindProducer(f.output(0), shared, static_cast<unsigned>(i));
    nl.removeNode(f.id());
  }
  return shared.id();
}

NodeId speculate(Netlist& nl, NodeId muxId, NodeId funcId,
                 std::unique_ptr<sched::Scheduler> scheduler) {
  const ShannonResult shannon = shannonDecompose(nl, muxId, funcId);
  const NodeId ee = convertToEarlyEval(nl, shannon.mux);
  return shareFunctions(nl, shannon.copies, ee, std::move(scheduler));
}

bool selectFeedsBack(const Netlist& nl, NodeId muxId, NodeId funcId) {
  if (!nl.hasNode(muxId) || !nl.hasNode(funcId)) return false;
  const Node& mux = nl.node(muxId);
  const Node& func = nl.node(funcId);
  if (mux.numInputs() == 0 || func.numOutputs() == 0) return false;

  // BFS from the func output: does any path reach the producer of the select?
  const NodeId selProducer = nl.channel(mux.input(0)).producer;
  std::queue<NodeId> frontier;
  std::vector<bool> seen;
  auto push = [&](NodeId id) {
    if (id >= seen.size()) seen.resize(id + 1, false);
    if (!seen[id]) {
      seen[id] = true;
      frontier.push(id);
    }
  };
  push(nl.channel(func.output(0)).consumer);
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop();
    if (id == selProducer) return true;
    const Node& n = nl.node(id);
    for (unsigned o = 0; o < n.numOutputs(); ++o)
      if (n.outputBound(o)) push(nl.channel(n.output(o)).consumer);
  }
  return false;
}

std::vector<SpeculationCandidate> findSpeculationCandidates(const Netlist& nl) {
  std::vector<SpeculationCandidate> out;
  // const_cast-free: scan via ids, dynamic_cast on const nodes.
  for (const NodeId id : nl.nodeIds()) {
    const auto* mux = dynamic_cast<const FuncNode*>(&nl.node(id));
    if (mux == nullptr || mux->role() != "mux" || !mux->outputBound(0)) continue;
    const NodeId next = nl.channel(mux->output(0)).consumer;
    const auto* func = dynamic_cast<const FuncNode*>(&nl.node(next));
    if (func == nullptr || func->numInputs() != 1 || func->numOutputs() != 1) continue;
    SpeculationCandidate cand;
    cand.mux = id;
    cand.func = next;
    cand.onCriticalCycle = selectFeedsBack(nl, id, next);
    out.push_back(cand);
  }
  return out;
}

}  // namespace esl::transform
