// Correct-by-construction transformations (paper §3.3, §4).
//
// Each function checks its structural preconditions (throws TransformError),
// rewires the netlist in place, and leaves a transfer-equivalent system —
// the property the transformation test-suite verifies by co-simulation.
//
// The §4 speculation recipe is the composition:
//   1. find a critical cycle through a multiplexer select
//      (findSpeculationCandidates / selectFeedsBack),
//   2. shannonDecompose  — move the block behind the mux onto its inputs,
//   3. convertToEarlyEval — swap the join-mux controller for early evaluation,
//   4. shareFunctions    — merge the copies into one scheduled shared module.
// speculate() runs 2-4 in one call.
#pragma once

#include <memory>
#include <vector>

#include "elastic/buffer.h"
#include "elastic/eemux.h"
#include "elastic/func.h"
#include "elastic/netlist.h"
#include "elastic/shared.h"
#include "sched/scheduler.h"

namespace esl::transform {

// --- Bubble insertion / removal (paper §2: always legal on any channel) -----

/// Inserts an empty EB on `ch`. Returns the new node.
ElasticBuffer& insertBubble(Netlist& nl, ChannelId ch, std::string name = {});

/// Removes an *empty* EB (inverse of insertBubble).
void removeBubble(Netlist& nl, NodeId ebId);

// --- EB retiming -------------------------------------------------------------

/// Moves an empty EB sitting directly after a combinational FuncNode to all
/// of the node's inputs (backward retiming). Returns the new EBs.
std::vector<NodeId> retimeBackward(Netlist& nl, NodeId ebId);

/// Moves EBs sitting directly before each input of a FuncNode to its output
/// (forward retiming). All input EBs must hold the same number of initial
/// tokens; their values are recomputed through the function.
NodeId retimeForward(Netlist& nl, NodeId funcId);

// --- The speculation pipeline ------------------------------------------------

/// Shannon decomposition / multiplexer retiming [14]: `funcId` (1-in/1-out,
/// directly after join-mux `muxId`) is duplicated onto every data input.
/// The mux is rebuilt for the new data width. Returns the new mux and copies.
struct ShannonResult {
  NodeId mux = kNoNode;
  std::vector<NodeId> copies;
};
ShannonResult shannonDecompose(Netlist& nl, NodeId muxId, NodeId funcId);

/// Replaces a join-mux (FuncNode role "mux") with an EarlyEvalMux on the same
/// channels. Only the controller changes; the datapath stays the same.
NodeId convertToEarlyEval(Netlist& nl, NodeId muxId);

/// Merges identical FuncNodes feeding the data inputs of an EarlyEvalMux into
/// a single SharedModule driven by `scheduler`. funcs[i] must feed data input
/// i. Returns the shared module.
NodeId shareFunctions(Netlist& nl, const std::vector<NodeId>& funcs, NodeId eeMuxId,
                      std::unique_ptr<sched::Scheduler> scheduler);

/// Steps 2-4 of the recipe in one call.
NodeId speculate(Netlist& nl, NodeId muxId, NodeId funcId,
                 std::unique_ptr<sched::Scheduler> scheduler);

// --- Critical-cycle analysis (step 1) ----------------------------------------

/// True if the select input of `muxId` is fed (through any path) from the
/// output of `funcId` — i.e. (mux, func) sits on a cycle through the select,
/// the situation where "speculation is the transformation of choice" (§4).
bool selectFeedsBack(const Netlist& nl, NodeId muxId, NodeId funcId);

struct SpeculationCandidate {
  NodeId mux = kNoNode;
  NodeId func = kNoNode;
  bool onCriticalCycle = false;  ///< select depends on the func output
};

/// All (join-mux, following-func) pairs, flagged when the select feeds back.
std::vector<SpeculationCandidate> findSpeculationCandidates(const Netlist& nl);

}  // namespace esl::transform
